"""Command-line entry point for the paper's experiments.

Usage::

    python -m repro.experiments.runner fig4
    python -m repro.experiments.runner fig5 --frames 21
    python -m repro.experiments.runner fig6 --frames 21 --jobs 4
    python -m repro.experiments.runner all --jobs 4
    python -m repro.experiments.runner table1 --frames 21 --qps 30 22 16
    python -m repro.experiments.runner all
    python -m repro.experiments.runner decode-bench --frames 9 --json BENCH_decode.json
    python -m repro.experiments.runner decode-bench --parse-only --json BENCH_vlc.json
    python -m repro.experiments.runner decode-bench --bitstream-version 2 --jobs 2
    python -m repro.experiments.runner stream-encode --from-yuv clip.yuv --geometry qcif \\
        --bitstream-version 2 --out stream.v2
    python -m repro.experiments.runner stream-decode stream.v2 --chunk-size 1500 --verify
    python -m repro.experiments.runner stream-decode stream.v2 --pipeline process --verify
    python -m repro.experiments.runner stream-bench --json BENCH_stream.json
    python -m repro.experiments.runner decode-bench --bitstream-version 2 --jobs 2 --shm
    python -m repro.experiments.runner transport-bench --json BENCH_transport.json
    python -m repro.experiments.runner gop-encode --frames 10 --i-period 5 --jobs 2 \\
        --out stream.v2
    python -m repro.experiments.runner seek-decode stream.v2 --frame 5 --verify
    python -m repro.experiments.runner gop-bench --json BENCH_gop.json
    python -m repro.experiments.runner decode-bench --backend numba

Every subcommand takes ``--backend {auto,numpy,numba}`` — the kernel
backend for the hot loops (:mod:`repro.kernels`); it overrides the
``REPRO_BACKEND`` environment variable and travels to spawned workers.

Each paper subcommand prints the same rows/series the corresponding
table or figure reports; ``decode-bench`` runs an encode→decode round
trip and times the batched reconstruction path against the seed
per-block decoder (bit-identity verified first).  ``--parse-only``
times the VLC symbol parse alone (LUT + word-level reader vs the seed
per-bit reader); ``--bitstream-version 2`` exercises the start-code
frame index and the parallel symbol parse.

The ``stream-*`` subcommands drive the incremental codec
(:mod:`repro.streaming`): ``stream-encode`` pulls frames straight off a
raw YUV file (never materializing the sequence) and writes the
bitstream as pictures close; ``stream-decode`` pushes a bitstream file
(or stdin) through a bounded-memory decode session in fixed-size chunks
and optionally re-decodes the whole buffer to gate bit-identity
(``--verify``, the CI smoke); ``stream-bench`` times push vs
whole-buffer decode and records ``BENCH_stream.json``.

The GOP subcommands drive the stream structure layer: ``gop-encode``
encodes with ``i_Period`` I-frames and optional multi-reference
P-frames — serially, or per-GOP across workers with a byte-identical
splice; ``seek-decode`` random-accesses a v2 stream at an I-frame and
optionally gates the tail against the full decode; ``gop-bench`` times
serial vs parallel GOP encode and records ``BENCH_gop.json``.
``--pipeline``
(on ``stream-decode`` and ``stream-bench``) overlaps symbol parse and
reconstruction on a worker thread or spawned process.

Every subcommand that shards work with ``--jobs`` also takes
``--shm``/``--no-shm`` to pin the transport (shared-memory handles vs
pickled payloads); the default is automatic — shm exactly when workers
spawn — and stdout is byte-identical in every mode.
``transport-bench`` measures the difference (parallel decode plus the
experiment sweep specs), recording what actually crosses the worker
pipe into ``BENCH_transport.json``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.reporting import format_histogram
from repro.experiments.config import ExperimentConfig
from repro.experiments.decode_bench import (
    run_decode_bench,
    run_parse_bench,
    write_records,
)
from repro.experiments.fig4_characterization import run_fig4
from repro.experiments.rd_curves import run_rd_sweep
from repro.experiments.stream_bench import run_stream_bench
from repro.experiments.table1_complexity import run_table1
from repro.obs import metrics as obs_metrics
from repro.obs import trace
from repro.obs.export import load_trace, write_metrics, write_trace
from repro.obs.report import render_report


def parse_geometry(value: str):
    """``qcif`` / ``cif`` / ``WxH`` → :class:`FrameGeometry`."""
    from repro.video.frame import CIF, QCIF, FrameGeometry

    named = {"qcif": QCIF, "cif": CIF}
    lowered = value.lower()
    if lowered in named:
        return named[lowered]
    try:
        width, height = (int(part) for part in lowered.split("x"))
        return FrameGeometry(width, height)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"geometry must be 'qcif', 'cif' or WxH (multiples of 16): {exc}"
        ) from None


def _config_from_args(args: argparse.Namespace, fps_list=None) -> ExperimentConfig:
    kwargs = dict(frames=args.frames, seed=args.seed)
    if args.sequences:
        kwargs["sequences"] = tuple(args.sequences)
    if args.qps:
        kwargs["qps"] = tuple(args.qps)
    if fps_list is not None:
        kwargs["fps_list"] = fps_list
    elif args.fps:
        kwargs["fps_list"] = tuple(args.fps)
    return ExperimentConfig(**kwargs)


def _progress(message: str) -> None:
    print(f"  ... {message}", file=sys.stderr, flush=True)


def _use_shm(args: argparse.Namespace) -> bool | str:
    """The transport mode the experiment drivers receive: an explicit
    ``--shm``/``--no-shm`` wins, otherwise ``"auto"`` (shared memory
    exactly when workers spawn).  Output is byte-identical either way —
    the flag exists for benchmarking and for pinning one path in CI."""
    return "auto" if args.shm is None else args.shm


def cmd_fig4(args: argparse.Namespace) -> None:
    result = run_fig4(
        seed=args.seed,
        jobs=args.jobs,
        progress=_progress if args.verbose else None,
        use_shm=_use_shm(args),
    )
    print(result.as_text())
    print()
    print(format_histogram(result.class_counts(), title="Blocks per error class"))
    print(f"\ntrue-vector fraction: {result.true_fraction():.1%}")


def cmd_rd(args: argparse.Namespace, fps: int) -> None:
    config = _config_from_args(args, fps_list=(fps,))
    sweep = run_rd_sweep(
        config,
        progress=_progress if args.verbose else None,
        jobs=args.jobs,
        use_shm=_use_shm(args),
    )
    print(sweep.as_text(fps))


def cmd_table1(args: argparse.Namespace) -> None:
    config = _config_from_args(args)
    table = run_table1(
        config,
        progress=_progress if args.verbose else None,
        jobs=args.jobs,
        use_shm=_use_shm(args),
    )
    print(table.as_text())
    print(f"\nmax reduction vs FSBM: {table.max_reduction():.1%}")


def cmd_decode_bench(args: argparse.Namespace) -> int:
    # The common --sequences/--qps options are multi-valued for the
    # sweep commands; this bench times exactly one configuration.
    if args.sequences and len(args.sequences) > 1:
        print("error: decode-bench takes a single --sequences value", file=sys.stderr)
        return 2
    if args.qps and len(args.qps) > 1:
        print("error: decode-bench takes a single --qps value", file=sys.stderr)
        return 2
    common = dict(
        sequence=(args.sequences or ["foreman"])[0],
        frames=args.frames,
        qp=(args.qps or [16])[0],
        estimator=args.estimator,
        seed=args.seed,
        rounds=args.rounds,
    )
    if args.parse_only:
        if args.bitstream_version != 1:
            print("error: --parse-only times the version-1 parse", file=sys.stderr)
            return 2
        if args.jobs != 1:
            print(
                "error: --parse-only times the serial symbol parse; --jobs does "
                "not apply (use --bitstream-version 2 --jobs N for the parallel "
                "parse path)",
                file=sys.stderr,
            )
            return 2
        result = run_parse_bench(**common)
        failure = "ERROR: parse paths disagree (LUT reader != seed bit reader)"
    else:
        if args.shm and args.bitstream_version != 2 and args.jobs <= 1:
            print(
                "error: --shm exercises the parallel transports; pair it with "
                "--jobs >= 2 and/or --bitstream-version 2",
                file=sys.stderr,
            )
            return 2
        result = run_decode_bench(
            **common,
            jobs=args.jobs,
            bitstream_version=args.bitstream_version,
            use_shm=bool(args.shm),
        )
        if getattr(result, "parallel_identical", None) is False:
            failure = "ERROR: v2 parallel parse decode diverged from the serial decode"
        else:
            failure = "ERROR: decode paths disagree (batched != per-block)"
    print(result.as_text())
    if args.json:
        path = Path(args.json)
        write_records(result.records(), path)
        print(f"recorded -> {path}", file=sys.stderr)
    if not result.identical:
        print(failure, file=sys.stderr)
        return 1
    return 0


def cmd_stream_encode(args: argparse.Namespace) -> int:
    """Encode a raw YUV file incrementally: frames stream in through
    ``iter_yuv_frames``, bytes stream out as pictures close — the
    whole file is never resident."""
    from repro.streaming import EncodeSession
    from repro.video.yuv_io import iter_yuv_frames

    try:
        session = EncodeSession(
            estimator=args.estimator,
            qp=args.qp,
            bitstream_version=args.bitstream_version,
            i_period=args.i_period,
            n_ref_frames=args.n_ref_frames,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    frames = iter_yuv_frames(args.from_yuv, args.geometry, max_frames=args.max_frames)
    try:
        if args.out == "-":
            written = session.encode_to(sys.stdout.buffer, frames)
        else:
            with open(args.out, "wb") as sink:
                written = session.encode_to(sink, frames)
    except (ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    stats = session.stats()
    print(
        f"stream-encode: {stats.frames_in} frames from {args.from_yuv} "
        f"({args.geometry.width}x{args.geometry.height}) -> {written} bytes "
        f"(v{args.bitstream_version}, {args.estimator}, qp={args.qp})",
        file=sys.stderr,
    )
    print(f"  {stats.as_text()}", file=sys.stderr)
    return 0


def cmd_stream_decode(args: argparse.Namespace) -> int:
    """Push a bitstream through a bounded-memory decode session in
    fixed-size chunks; optionally re-decode the whole buffer and gate
    bit-identity (``--verify``)."""
    from repro.codec.decoder import decode_bitstream
    from repro.streaming import DecodeSession

    if args.chunk_size < 1:
        print(f"error: --chunk-size must be >= 1, got {args.chunk_size}", file=sys.stderr)
        return 2
    if args.max_buffered < 1:
        print(f"error: --max-buffered must be >= 1, got {args.max_buffered}", file=sys.stderr)
        return 2
    try:
        source = sys.stdin.buffer if args.input == "-" else open(args.input, "rb")
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    try:
        sink = open(args.out, "wb") if args.out else None
    except OSError as exc:
        if source is not sys.stdin.buffer:
            source.close()
        print(f"error: {exc}", file=sys.stderr)
        return 1
    decoded = []  # kept only under --verify
    fed = bytearray() if args.verify else None
    try:
        session = DecodeSession(
            max_buffered_frames=args.max_buffered,
            pipeline=args.pipeline if args.pipeline != "off" else False,
        )

        def drain() -> None:
            for frame in session.frames():
                if fed is not None:
                    decoded.append(frame)
                if sink is not None:
                    for plane in (frame.y, frame.cb, frame.cr):
                        sink.write(plane.tobytes())

        try:
            while True:
                chunk = source.read(args.chunk_size)
                if not chunk:
                    break
                if fed is not None:
                    fed += chunk
                session.feed(chunk)
                drain()
            session.close()
            drain()
        except (ValueError, EOFError, OSError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    finally:
        if source is not sys.stdin.buffer:
            source.close()
        if sink is not None:
            sink.close()
    stats = session.stats()
    print(f"stream-decode: {stats.frames_out} frames in {args.chunk_size}-byte chunks")
    print(f"  {stats.as_text()}")
    if args.verify:
        whole = decode_bitstream(bytes(fed))
        identical = len(whole) == len(decoded) and all(
            a == b for a, b in zip(decoded, whole)
        )
        print(f"  identical to whole-buffer decode: {identical}")
        if not identical:
            print("ERROR: streamed decode diverged from whole-buffer decode", file=sys.stderr)
            return 1
    return 0


def cmd_stream_bench(args: argparse.Namespace) -> int:
    if args.chunk_size < 1:
        print(f"error: --chunk-size must be >= 1, got {args.chunk_size}", file=sys.stderr)
        return 2
    if args.sequences and len(args.sequences) > 1:
        print("error: stream-bench takes a single --sequences value", file=sys.stderr)
        return 2
    if args.qps and len(args.qps) > 1:
        print("error: stream-bench takes a single --qps value", file=sys.stderr)
        return 2
    result = run_stream_bench(
        sequence=(args.sequences or ["foreman"])[0],
        frames=args.frames,
        qp=(args.qps or [16])[0],
        estimator=args.estimator,
        seed=args.seed,
        rounds=args.rounds,
        chunk_size=args.chunk_size,
        pipeline=args.pipeline,
    )
    print(result.as_text())
    if args.json:
        path = Path(args.json)
        write_records(result.records(), path)
        print(f"recorded -> {path}", file=sys.stderr)
    if not result.identical:
        print("ERROR: streaming paths diverged from the whole-buffer codec", file=sys.stderr)
        return 1
    if not result.within_bound:
        print(
            f"ERROR: peak buffered {result.peak_buffered_bytes} bytes exceeds the "
            f"{result.buffer_bound_bytes}-byte bound",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_transport_bench(args: argparse.Namespace) -> int:
    from repro.experiments.transport_bench import (
        run_transport_bench,
        run_transport_sweep_bench,
    )

    if args.sequences and len(args.sequences) > 1:
        print("error: transport-bench takes a single --sequences value", file=sys.stderr)
        return 2
    if args.qps and len(args.qps) > 1:
        print("error: transport-bench takes a single --qps value", file=sys.stderr)
        return 2
    common = dict(
        sequence=(args.sequences or ["foreman"])[0],
        frames=args.frames,
        qp=(args.qps or [16])[0],
        estimator=args.estimator,
        seed=args.seed,
        rounds=args.rounds,
        jobs=max(args.jobs, 2),
    )
    result = run_transport_bench(**common)
    print(result.as_text())
    sweep = run_transport_sweep_bench(**common)
    print(sweep.as_text())
    if args.json:
        path = Path(args.json)
        write_records({**result.records(), **sweep.records()}, path)
        print(f"recorded -> {path}", file=sys.stderr)
    if not result.decode_identical:
        print("ERROR: shared-memory decode diverged from the pickling decode", file=sys.stderr)
        return 1
    if not sweep.sweep_identical:
        print("ERROR: shared-memory sweep diverged from the pickling sweep", file=sys.stderr)
        return 1
    if sweep.payload_bytes_per_job_shm != 0:
        print("ERROR: shm-packed sweep specs still carry payload bytes", file=sys.stderr)
        return 1
    if not (result.no_leaks and sweep.no_leaks):
        print("ERROR: shared-memory segments leaked in /dev/shm", file=sys.stderr)
        return 1
    return 0


def cmd_gop_encode(args: argparse.Namespace) -> int:
    """Encode one clip with GOP structure — serially, or per-GOP across
    workers (``--jobs``) with the spliced stream byte-identical to the
    serial encoder's.  Deterministic summary on stdout, so CI can diff
    serial and parallel runs."""
    from repro.codec.encoder import Encoder
    from repro.parallel import encode_sequence_parallel
    from repro.video.synthesis.sequences import make_sequence

    if args.sequences and len(args.sequences) > 1:
        print("error: gop-encode takes a single --sequences value", file=sys.stderr)
        return 2
    if args.qps and len(args.qps) > 1:
        print("error: gop-encode takes a single --qps value", file=sys.stderr)
        return 2
    sequence = (args.sequences or ["foreman"])[0]
    qp = (args.qps or [16])[0]
    clip = make_sequence(sequence, frames=args.frames, seed=args.seed)
    try:
        if args.jobs > 1:
            result = encode_sequence_parallel(
                clip,
                qp=qp,
                estimator=args.estimator,
                i_period=args.i_period,
                n_ref_frames=args.n_ref_frames,
                jobs=args.jobs,
                progress=_progress if args.verbose else None,
                use_shm=_use_shm(args),
            )
        else:
            result = Encoder(
                estimator=args.estimator,
                qp=qp,
                keep_reconstruction=False,
                bitstream_version=2,
                i_period=args.i_period,
                n_ref_frames=args.n_ref_frames,
            ).encode(clip)
        with open(args.out, "wb") as sink:
            sink.write(result.bitstream)
    except (ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    types = "".join(r.frame_type for r in result.frames)
    print(
        f"gop-encode: {sequence}, {len(result.frames)} frames, qp={qp}, "
        f"i_period={args.i_period}, n_ref={args.n_ref_frames} -> "
        f"{len(result.bitstream)} bytes (v2)"
    )
    print(f"  frame types: {types}")
    print(f"  keyframes: {list(result.keyframes)}")
    return 0


def cmd_seek_decode(args: argparse.Namespace) -> int:
    """Random access: decode a v2 stream from an I-frame onward, and
    optionally gate the tail against the full decode (``--verify``)."""
    from repro.codec.decoder import FrameIndex, decode_bitstream, detect_version

    try:
        with open(args.input, "rb") as source:
            bitstream = source.read()
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if detect_version(bitstream) != 2:
        print("error: seek-decode needs a version-2 stream (FrameIndex)", file=sys.stderr)
        return 1
    index = FrameIndex.scan(bitstream)
    keyframes = index.keyframes(bitstream)
    types = "".join(index.frame_types(bitstream))
    frame = args.frame
    if frame is None:
        # Default to the middle keyframe — the interesting seek target
        # (0 is just a full decode).
        frame = keyframes[len(keyframes) // 2]
    print(f"seek-decode: {len(index)} frames ({types}), keyframes {list(keyframes)}")
    try:
        tail = decode_bitstream(bitstream, start_frame=frame)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"  decoded {len(tail)} frames from keyframe {frame}")
    if args.verify:
        full = decode_bitstream(bitstream)
        identical = len(tail) == len(full) - frame and all(
            a == b for a, b in zip(tail, full[frame:])
        )
        print(f"  tail bit-identical to full decode: {identical}")
        if not identical:
            print("ERROR: seek decode diverged from the full decode", file=sys.stderr)
            return 1
    return 0


def cmd_gop_bench(args: argparse.Namespace) -> int:
    from repro.experiments.gop_bench import run_gop_bench

    if args.sequences and len(args.sequences) > 1:
        print("error: gop-bench takes a single --sequences value", file=sys.stderr)
        return 2
    if args.qps and len(args.qps) > 1:
        print("error: gop-bench takes a single --qps value", file=sys.stderr)
        return 2
    result = run_gop_bench(
        sequence=(args.sequences or ["foreman"])[0],
        frames=args.frames,
        qp=(args.qps or [16])[0],
        estimator=args.estimator,
        seed=args.seed,
        rounds=args.rounds,
        i_period=args.i_period,
        n_ref_frames=args.n_ref_frames,
        jobs=max(args.jobs, 2),
    )
    print(result.as_text())
    if args.json:
        path = Path(args.json)
        write_records(result.records(), path)
        print(f"recorded -> {path}", file=sys.stderr)
    if not result.encode_identical:
        print("ERROR: parallel GOP splice diverged from the serial encode", file=sys.stderr)
        return 1
    if not result.seek_identical:
        print("ERROR: keyframe seek diverged from the full decode", file=sys.stderr)
        return 1
    return 0


def cmd_all(args: argparse.Namespace) -> None:
    """Everything, sharing one sweep, with a per-stage timing summary.

    Progress lines flush through the pool's progress callback
    (``--verbose``); the timing summary goes to stderr so stdout stays
    byte-identical to running the subcommands individually.

    The summary is read straight off trace spans: each stage runs under
    an ``all.stage`` span on a private always-on tracer (so the summary
    prints with or without ``--trace``), and when the global tracer is
    recording the stage spans are spliced into its timeline too.
    """
    stage_tracer = trace.Tracer()
    stage_tracer.enable()
    timings: list[tuple[str, trace.Span]] = []

    def timed(label: str, fn) -> object:
        with stage_tracer.span("all.stage", stage=label) as stage_span:
            value = fn()
        timings.append((label, stage_span))
        return value

    timed("fig4", lambda: cmd_fig4(args))
    print("\n" + "=" * 70 + "\n")
    config = _config_from_args(args)
    sweep = timed(
        "rd sweep",
        lambda: run_rd_sweep(
            config,
            progress=_progress if args.verbose else None,
            jobs=args.jobs,
            use_shm=_use_shm(args),
        ),
    )
    for fps in config.fps_list:
        label = {30: "fig5", 10: "fig6"}.get(fps, f"rd@{fps}fps")
        timed(f"{label} report", lambda f=fps: print(sweep.as_text(f)))
        print("\n" + "=" * 70 + "\n")

    def table1_report() -> None:
        table = run_table1(config, sweep=sweep)
        print(table.as_text())
        print(f"\nmax reduction vs FSBM: {table.max_reduction():.1%}")

    timed("table1", table1_report)
    print("\n" + "=" * 70 + "\n")

    def streaming_report() -> None:
        # A small but end-to-end pass over the streaming subsystem:
        # v2 encode, push decode in MTU-sized chunks, every identity
        # and the memory bound checked inside the bench.  Only the
        # deterministic lines go to stdout — measured timings land on
        # stderr, preserving cmd_all's byte-identical-stdout contract.
        result = run_stream_bench(
            sequence=config.sequences[0],
            frames=min(args.frames, 6),
            qp=config.qps[0],
            estimator="tss",
            seed=args.seed,
            rounds=1,
        )
        lines = result.as_text().splitlines()
        print("\n".join(lines[:-1]))
        print(lines[-1], file=sys.stderr)
        if not (result.identical and result.within_bound):
            raise SystemExit("streaming stage failed: identity or memory bound broken")

    timed("streaming", streaming_report)
    total = sum(stage_span.duration_s for _, stage_span in timings)
    width = max(len(label) for label, _ in timings)
    print("\n== wall-clock summary ==", file=sys.stderr)
    for label, stage_span in timings:
        print(f"  {label:<{width}}  {stage_span.duration_s:8.2f}s", file=sys.stderr)
    print(f"  {'total':<{width}}  {total:8.2f}s  (--jobs {args.jobs})", file=sys.stderr, flush=True)
    if trace.TRACER.enabled:
        trace.TRACER.adopt(stage_tracer.drain())


def cmd_report(args: argparse.Namespace) -> int:
    """Per-frame breakdown tables from a recorded ``--trace`` file."""
    try:
        data = load_trace(args.trace_file)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(render_report(data["traceEvents"]))
    return 0


def _add_backend_option(target: argparse.ArgumentParser) -> None:
    target.add_argument(
        "--backend", choices=("auto", "numpy", "numba"), default=None,
        help="kernel backend for every hot loop (overrides the "
        "REPRO_BACKEND environment variable; 'numba' errors when numba "
        "is not installed, 'auto' falls back to numpy silently)",
    )


def _add_obs_options(target: argparse.ArgumentParser) -> None:
    target.add_argument(
        "--trace", default=None, metavar="FILE",
        help="record a Chrome trace-event JSON timeline of the run to FILE "
        "(open in chrome://tracing or Perfetto; worker processes merge in "
        "as their own lanes; inspect with the 'report' subcommand)",
    )
    target.add_argument(
        "--metrics", default=None, metavar="FILE",
        help="dump the metrics registry (frames, bits by syntax element, "
        "SAD evaluations, cache hits, queue depths, ...) as JSON to FILE",
    )


def build_parser() -> argparse.ArgumentParser:
    # Shared options live on a parent parser attached to every
    # subcommand, so they are written *after* the command name
    # (`runner table1 --frames 21`); nargs="+" options would otherwise
    # swallow the command word.
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--frames", type=int, default=21, help="30fps source frames per clip")
    common.add_argument("--seed", type=int, default=0, help="synthesis seed")
    common.add_argument("--verbose", action="store_true", help="print per-encode progress")
    common.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes sharding the experiment's job list "
        "(default 1 = in-process; output is byte-identical for any N)",
    )
    common.add_argument(
        "--sequences", nargs="+", default=None, metavar="NAME",
        help="subset of sequences (default: the paper's four)",
    )
    common.add_argument(
        "--qps", nargs="+", type=int, default=None, metavar="QP",
        help="subset of quantizer steps (default: 30 28 ... 16)",
    )
    common.add_argument(
        "--fps", nargs="+", type=int, default=None, metavar="FPS",
        help="frame rates to sweep (default: 30 10)",
    )
    common.add_argument(
        "--shm", action=argparse.BooleanOptionalAction, default=None,
        help="transport for parallel runs: --shm forces the shared-memory "
        "path, --no-shm forces pickling; default is automatic (shm whenever "
        "workers spawn).  Output is byte-identical in every mode",
    )
    _add_backend_option(common)
    _add_obs_options(common)
    parser = argparse.ArgumentParser(
        prog="repro.experiments.runner",
        description="Regenerate the tables/figures of Lopez et al., DATE 2005.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("fig4", parents=[common], help="Fig. 4 characterization scatter classes")
    sub.add_parser("fig5", parents=[common], help="Fig. 5 RD curves, QCIF @ 30 fps")
    sub.add_parser("fig6", parents=[common], help="Fig. 6 RD curves, QCIF @ 10 fps")
    sub.add_parser("table1", parents=[common], help="Table 1 search-cost table")
    sub.add_parser("all", parents=[common], help="everything, sharing one sweep")
    decode = sub.add_parser(
        "decode-bench", parents=[common],
        help="encode→decode round trip timing batched vs per-block reconstruction",
    )
    decode.add_argument(
        "--estimator", default="fsbm", metavar="NAME",
        help="registry name of the search used for the encode (default fsbm)",
    )
    decode.add_argument(
        "--rounds", type=int, default=3, metavar="N",
        help="timing repetitions per path, best-of (default 3)",
    )
    decode.add_argument(
        "--json", default=None, metavar="PATH",
        help="merge the timings into this JSON file (e.g. BENCH_decode.json)",
    )
    decode.add_argument(
        "--parse-only", action="store_true",
        help="time the symbol parse alone (LUT + word reader vs the seed "
        "per-bit reader) and report the parse/reconstruct split — record "
        "with --json BENCH_vlc.json",
    )
    decode.add_argument(
        "--bitstream-version", type=int, default=1, choices=(1, 2), metavar="V",
        help="bitstream format for the encode: 1 = seed format (default), "
        "2 = byte-aligned start codes + frame lengths; v2 additionally "
        "verifies the frame index and the parallel symbol parse",
    )
    stream_encode = sub.add_parser(
        "stream-encode",
        help="encode a raw YUV file incrementally (bounded memory, bytes out "
        "as each picture closes)",
    )
    stream_encode.add_argument(
        "--from-yuv", required=True, metavar="PATH",
        help="raw planar 4:2:0 input file",
    )
    stream_encode.add_argument(
        "--geometry", type=parse_geometry, default="qcif", metavar="G",
        help="frame geometry of the YUV file: qcif, cif or WxH (default qcif)",
    )
    stream_encode.add_argument(
        "--out", default="-", metavar="PATH",
        help="bitstream output file ('-' = stdout, the default)",
    )
    stream_encode.add_argument("--qp", type=int, default=16, help="quantizer step (1..31)")
    stream_encode.add_argument(
        "--estimator", default="tss", metavar="NAME",
        help="registry name of the motion search (default tss)",
    )
    stream_encode.add_argument(
        "--bitstream-version", type=int, default=2, choices=(1, 2), metavar="V",
        help="wire format (default 2: the streaming-decodable framed format)",
    )
    stream_encode.add_argument(
        "--max-frames", type=int, default=None, metavar="N",
        help="encode at most N frames of the file",
    )
    stream_encode.add_argument(
        "--i-period", type=int, default=None, metavar="N",
        help="open a new GOP (I-frame) every N frames (default: only frame 0)",
    )
    stream_encode.add_argument(
        "--n-ref-frames", type=int, default=1, metavar="N",
        help="reference frames each P-frame may select from (default 1)",
    )
    _add_backend_option(stream_encode)
    _add_obs_options(stream_encode)
    stream_decode = sub.add_parser(
        "stream-decode",
        help="push-decode a v2 bitstream in fixed-size chunks (bounded memory)",
    )
    stream_decode.add_argument(
        "input", help="bitstream file ('-' = stdin)",
    )
    stream_decode.add_argument(
        "--chunk-size", type=int, default=65536, metavar="N",
        help="bytes per feed (default 65536; any value decodes identically)",
    )
    stream_decode.add_argument(
        "--out", default=None, metavar="PATH",
        help="write decoded frames as raw planar 4:2:0 to this file",
    )
    stream_decode.add_argument(
        "--max-buffered", type=int, default=2, metavar="N",
        help="decoded-frame buffer depth (default 2)",
    )
    stream_decode.add_argument(
        "--verify", action="store_true",
        help="also decode the whole buffer at once and fail unless the "
        "streamed frames are bit-identical (the CI smoke)",
    )
    stream_decode.add_argument(
        "--pipeline", choices=("off", "thread", "process"), default="off",
        help="overlap symbol parse and reconstruction on a worker thread or "
        "spawned process (default off; output is bit-identical either way)",
    )
    _add_backend_option(stream_decode)
    _add_obs_options(stream_decode)
    stream_bench = sub.add_parser(
        "stream-bench", parents=[common],
        help="push decode vs whole-buffer decode timing + peak-memory bound",
    )
    stream_bench.add_argument(
        "--estimator", default="tss", metavar="NAME",
        help="registry name of the search used for the encode (default tss)",
    )
    stream_bench.add_argument(
        "--rounds", type=int, default=3, metavar="N",
        help="timing repetitions per path, best-of (default 3)",
    )
    stream_bench.add_argument(
        "--chunk-size", type=int, default=1500, metavar="N",
        help="bytes per feed for the push path (default 1500, MTU-ish)",
    )
    stream_bench.add_argument(
        "--json", default=None, metavar="PATH",
        help="merge the timings into this JSON file (e.g. BENCH_stream.json)",
    )
    stream_bench.add_argument(
        "--pipeline", choices=("thread", "process"), default="thread",
        help="worker mode for the pipelined timing pass (default thread; "
        "identity is always verified in both modes)",
    )
    transport = sub.add_parser(
        "transport-bench", parents=[common],
        help="shared-memory vs pickling transport: bytes crossing the worker "
        "pipe per frame + parallel decode timing both ways",
    )
    transport.add_argument(
        "--estimator", default="tss", metavar="NAME",
        help="registry name of the search used for the encode (default tss)",
    )
    transport.add_argument(
        "--rounds", type=int, default=3, metavar="N",
        help="timing repetitions per path, best-of (default 3)",
    )
    transport.add_argument(
        "--json", default=None, metavar="PATH",
        help="merge the measurements into this JSON file (e.g. BENCH_transport.json)",
    )
    gop_encode = sub.add_parser(
        "gop-encode", parents=[common],
        help="encode with GOP structure (i_Period I-frames, multi-reference); "
        "--jobs N encodes GOPs in parallel, byte-identical to serial",
    )
    gop_encode.add_argument(
        "--out", required=True, metavar="PATH", help="bitstream output file",
    )
    gop_encode.add_argument(
        "--i-period", type=int, required=True, metavar="N",
        help="open a new GOP (I-frame) every N frames",
    )
    gop_encode.add_argument(
        "--n-ref-frames", type=int, default=1, metavar="N",
        help="reference frames each P-frame may select from (default 1)",
    )
    gop_encode.add_argument(
        "--estimator", default="tss", metavar="NAME",
        help="registry name of the motion search (default tss)",
    )
    seek = sub.add_parser(
        "seek-decode",
        help="random access: decode a v2 stream from an I-frame onward",
    )
    seek.add_argument("input", help="bitstream file")
    seek.add_argument(
        "--frame", type=int, default=None, metavar="N",
        help="keyframe to seek to (default: the middle keyframe)",
    )
    seek.add_argument(
        "--verify", action="store_true",
        help="also decode the whole stream and fail unless the seeked tail "
        "is bit-identical (the CI smoke)",
    )
    _add_backend_option(seek)
    _add_obs_options(seek)
    gop_bench = sub.add_parser(
        "gop-bench", parents=[common],
        help="per-GOP parallel encode speedup + keyframe-seek identity",
    )
    gop_bench.add_argument(
        "--estimator", default="tss", metavar="NAME",
        help="registry name of the search used for the encodes (default tss)",
    )
    gop_bench.add_argument(
        "--rounds", type=int, default=3, metavar="N",
        help="timing repetitions per path, best-of (default 3)",
    )
    gop_bench.add_argument(
        "--i-period", type=int, default=3, metavar="N",
        help="GOP length in frames (default 3)",
    )
    gop_bench.add_argument(
        "--n-ref-frames", type=int, default=1, metavar="N",
        help="reference frames each P-frame may select from (default 1)",
    )
    gop_bench.add_argument(
        "--json", default=None, metavar="PATH",
        help="merge the measurements into this JSON file (e.g. BENCH_gop.json)",
    )
    report = sub.add_parser(
        "report",
        help="per-frame timing/bits breakdown table from a --trace file",
    )
    report.add_argument("trace_file", help="trace JSON recorded with --trace")
    return parser


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "fig4":
        cmd_fig4(args)
    elif args.command == "fig5":
        cmd_rd(args, fps=30)
    elif args.command == "fig6":
        cmd_rd(args, fps=10)
    elif args.command == "table1":
        cmd_table1(args)
    elif args.command == "all":
        cmd_all(args)
    elif args.command == "decode-bench":
        return cmd_decode_bench(args)
    elif args.command == "stream-encode":
        return cmd_stream_encode(args)
    elif args.command == "stream-decode":
        return cmd_stream_decode(args)
    elif args.command == "stream-bench":
        return cmd_stream_bench(args)
    elif args.command == "transport-bench":
        return cmd_transport_bench(args)
    elif args.command == "gop-encode":
        return cmd_gop_encode(args)
    elif args.command == "seek-decode":
        return cmd_seek_decode(args)
    elif args.command == "gop-bench":
        return cmd_gop_bench(args)
    elif args.command == "report":
        return cmd_report(args)
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "backend", None) is not None:
        from repro.kernels import set_backend

        try:
            set_backend(args.backend)
        except RuntimeError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    trace_path = getattr(args, "trace", None)
    metrics_path = getattr(args, "metrics", None)
    if trace_path:
        trace.TRACER.enable()
    try:
        return _dispatch(args)
    finally:
        # Both files write even when the command fails partway — a
        # partial trace of a failed run is exactly the artifact to have.
        if trace_path:
            trace.TRACER.disable()
            write_trace(trace_path, trace.TRACER.drain())
            print(f"trace -> {trace_path}", file=sys.stderr)
        if metrics_path:
            write_metrics(metrics_path, obs_metrics.REGISTRY)
            print(f"metrics -> {metrics_path}", file=sys.stderr)


if __name__ == "__main__":
    raise SystemExit(main())
