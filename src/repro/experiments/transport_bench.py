"""Transport benchmark: what crosses the process boundary, and how fast.

The question PR 6 answers is not "is the codec faster" but "what does a
frame cost to *move*": the job pool used to pickle every payload byte
into the worker pipe and every result array back out.  With
:mod:`repro.transport`, payloads live in shared memory and the pipe
carries :class:`~repro.transport.FrameHandle`\\ s — a few hundred bytes
regardless of frame size.  This benchmark measures that directly on a
real decode workload:

* **bytes pickled per frame** — the serialized size of one frame's
  parse-job spec and of its parsed-symbol result, on the plain pickling
  path vs the shared-memory path, plus the *payload* bytes riding in
  each (the shm number must be ~0: handles only);
* **end-to-end decode** — ``decode_bitstream(jobs=N)`` with
  ``use_shm`` off vs on, bit-identity verified against the serial
  decode first (best-of-``rounds`` timing; on a single-core CI box the
  speedup is an honest ~1.0 and the regression gate knows not to gate
  it);
* **arena hygiene** — after every pass, no ``repro-*`` segment may
  survive in ``/dev/shm`` (``no_leaks`` folds into the gated
  ``identical`` flag).

``runner transport-bench --json BENCH_transport.json`` records it;
``benchmarks/test_bench_transport.py`` is the CI entry point.
"""

from __future__ import annotations

import glob
import os
import pickle
from dataclasses import dataclass

from repro.codec.decoder import FrameIndex, decode_bitstream
from repro.codec.encoder import encode_sequence
from repro.parallel.jobs import ParseFrameJob
from repro.video.synthesis.sequences import make_sequence

# Re-exported for the runner's --json flag (same merge convention).
from repro.experiments.decode_bench import write_records  # noqa: F401
from repro.experiments.stream_bench import _best_of


def shm_segments() -> list[str]:
    """Live ``repro-*`` shared-memory segments (Linux: ``/dev/shm``).
    The leak-check quantity; empty on other platforms, where the
    in-test arena assertions still cover the refcount logic."""
    return sorted(glob.glob("/dev/shm/repro-*"))


@dataclass(frozen=True)
class TransportBenchResult:
    """One transport benchmark's outcome."""

    sequence: str
    frames: int
    qp: int
    jobs: int
    bitstream_bytes: int
    #: Mean pickled size of one frame's parse-job spec, both transports.
    spec_pickle_bytes_plain: float
    spec_pickle_bytes_shm: float
    #: Mean *payload* bytes riding in that pickle (shm must be ~0).
    payload_bytes_per_frame_plain: float
    payload_bytes_per_frame_shm: float
    #: Mean pickled size of one frame's parsed-symbol result.
    result_pickle_bytes_plain: float
    result_pickle_bytes_shm: float
    decode_plain_ms: float
    decode_shm_ms: float
    #: Both parallel transports == the serial decode, bit for bit.
    decode_identical: bool
    #: /dev/shm swept clean after every pass.
    no_leaks: bool
    machine_cpu_count: int

    @property
    def identical(self) -> bool:
        """The CI gate: identity held and nothing leaked."""
        return self.decode_identical and self.no_leaks

    @property
    def shm_speedup(self) -> float:
        """Shm-transport vs pickling decode at the same job count."""
        return self.decode_plain_ms / self.decode_shm_ms

    @property
    def pickle_shrink(self) -> float:
        """How many times smaller the spec pickle got (plain / shm)."""
        return self.spec_pickle_bytes_plain / max(self.spec_pickle_bytes_shm, 1.0)

    def records(self) -> dict[str, float]:
        """Payload for ``BENCH_transport.json`` (timings ``_ms``, gated
        ratio contains ``speedup``, byte counts are info).  The
        ``transport_`` prefix also tells the regression gate to skip
        speedup gating on single-core machines."""
        return {
            "transport_spec_pickle_bytes_plain": self.spec_pickle_bytes_plain,
            "transport_spec_pickle_bytes_shm": self.spec_pickle_bytes_shm,
            "transport_payload_bytes_per_frame_plain": self.payload_bytes_per_frame_plain,
            "transport_payload_bytes_per_frame_shm": self.payload_bytes_per_frame_shm,
            "transport_result_pickle_bytes_plain": self.result_pickle_bytes_plain,
            "transport_result_pickle_bytes_shm": self.result_pickle_bytes_shm,
            "transport_decode_plain_ms": self.decode_plain_ms,
            "transport_decode_shm_ms": self.decode_shm_ms,
            "transport_shm_speedup": self.shm_speedup,
            "machine_cpu_count": float(self.machine_cpu_count),
        }

    def as_text(self) -> str:
        return (
            f"transport bench: {self.sequence}, {self.frames} frames, qp={self.qp}, "
            f"{self.bitstream_bytes} bytes (v2), --jobs {self.jobs}\n"
            f"  bit-identical (shm == pickling == serial): {self.decode_identical}; "
            f"/dev/shm clean: {self.no_leaks}\n"
            f"  per-frame spec pickle: {self.spec_pickle_bytes_plain:.0f} B plain "
            f"-> {self.spec_pickle_bytes_shm:.0f} B shm "
            f"({self.pickle_shrink:.1f}x smaller; payload bytes "
            f"{self.payload_bytes_per_frame_plain:.0f} -> "
            f"{self.payload_bytes_per_frame_shm:.0f})\n"
            f"  per-frame result pickle: {self.result_pickle_bytes_plain:.0f} B plain "
            f"-> {self.result_pickle_bytes_shm:.0f} B shm\n"
            f"  decode --jobs {self.jobs}: plain {self.decode_plain_ms:.1f} ms vs "
            f"shm {self.decode_shm_ms:.1f} ms -> {self.shm_speedup:.2f}x "
            f"({self.machine_cpu_count} cpu)"
        )


def run_transport_bench(
    sequence: str = "foreman",
    frames: int = 12,
    qp: int = 16,
    estimator: str = "tss",
    seed: int = 0,
    rounds: int = 3,
    jobs: int = 2,
    clip=None,
) -> TransportBenchResult:
    """Encode ``frames`` of a synthetic clip as version 2, then measure
    the transport cost of its parallel decode both ways.

    The pickled-size numbers come from the actual job specs and parsed
    results of this stream; the timing is ``decode_bitstream`` at
    ``jobs`` workers with ``use_shm`` off vs on, bit-identity against
    the serial decode verified before anything is timed.
    """
    from repro.transport import FrameArena, export, materialize, payload_bytes

    if clip is None:
        clip = make_sequence(sequence, frames=frames, seed=seed)
    encode = encode_sequence(clip, qp=qp, estimator=estimator, bitstream_version=2)
    bitstream = encode.bitstream
    frames = len(clip)

    # -- what one frame costs to ship ----------------------------------
    index = FrameIndex.scan(bitstream)
    specs = [ParseFrameJob(payload=index.payload(bitstream, i)) for i in range(len(index))]
    parsed = [spec.run() for spec in specs]
    spec_plain = [len(pickle.dumps(spec)) for spec in specs]
    payload_plain = [payload_bytes(spec.payload) for spec in specs]
    result_plain = [len(pickle.dumps(p)) for p in parsed]
    with FrameArena(name_prefix="repro-bench") as arena:
        packed = [spec.pack_shm(arena.place) for spec in specs]
        spec_shm = [len(pickle.dumps(spec)) for spec in packed]
        # A packed spec's payload rides as a handle: zero payload bytes.
        payload_shm = [payload_bytes(spec.payload) if spec.payload else 0 for spec in packed]
    shared = [export(p, name_prefix="repro-bench") for p in parsed]
    result_shm = [len(pickle.dumps(s)) for s in shared]
    restored = [materialize(s, unlink=True) for s in shared]
    decode_identical = restored == parsed

    # -- end-to-end: parallel decode, both transports ------------------
    serial = decode_bitstream(bitstream)
    plain = decode_bitstream(bitstream, jobs=jobs)
    shm = decode_bitstream(bitstream, jobs=jobs, use_shm=True)
    for candidate in (plain, shm):
        if not (len(candidate) == len(serial) and all(a == b for a, b in zip(candidate, serial))):
            decode_identical = False
    no_leaks = not shm_segments()

    plain_s = _best_of(lambda: decode_bitstream(bitstream, jobs=jobs), rounds)
    shm_s = _best_of(lambda: decode_bitstream(bitstream, jobs=jobs, use_shm=True), rounds)
    no_leaks = no_leaks and not shm_segments()

    def mean(values) -> float:
        return sum(values) / max(len(values), 1)

    return TransportBenchResult(
        sequence=encode.name,
        frames=frames,
        qp=encode.qp,
        jobs=jobs,
        bitstream_bytes=len(bitstream),
        spec_pickle_bytes_plain=mean(spec_plain),
        spec_pickle_bytes_shm=mean(spec_shm),
        payload_bytes_per_frame_plain=mean(payload_plain),
        payload_bytes_per_frame_shm=mean(payload_shm),
        result_pickle_bytes_plain=mean(result_plain),
        result_pickle_bytes_shm=mean(result_shm),
        decode_plain_ms=plain_s * 1000.0,
        decode_shm_ms=shm_s * 1000.0,
        decode_identical=decode_identical,
        no_leaks=no_leaks,
        machine_cpu_count=os.cpu_count() or 1,
    )
