"""Transport benchmark: what crosses the process boundary, and how fast.

The question PR 6 answers is not "is the codec faster" but "what does a
frame cost to *move*": the job pool used to pickle every payload byte
into the worker pipe and every result array back out.  With
:mod:`repro.transport`, payloads live in shared memory and the pipe
carries :class:`~repro.transport.FrameHandle`\\ s — a few hundred bytes
regardless of frame size.  This benchmark measures that directly on a
real decode workload:

* **bytes pickled per frame** — the serialized size of one frame's
  parse-job spec and of its parsed-symbol result, on the plain pickling
  path vs the shared-memory path, plus the *payload* bytes riding in
  each (the shm number must be ~0: handles only);
* **end-to-end decode** — ``decode_bitstream(jobs=N)`` with
  ``use_shm`` off vs on, bit-identity verified against the serial
  decode first (best-of-``rounds`` timing; on a single-core CI box the
  speedup is an honest ~1.0 and the regression gate knows not to gate
  it);
* **arena hygiene** — after every pass, no ``repro-*`` segment may
  survive in ``/dev/shm`` (``no_leaks`` folds into the gated
  ``identical`` flag).

:func:`run_transport_sweep_bench` extends the same discipline to the
experiment fan-out specs (``EncodeJob``, ``SweepJob``, ``Fig4PairJob``):
each spec's shared-memory pickle is compared against its **by-value
twin** — the same spec shape with the source frames riding inline,
built against :class:`_ByValueStore` — which is what the spec *would*
cost if sources traveled in the pickle.  (The historical plain specs
are smaller still, but only because workers re-render the source from
scratch; the twin prices the actual bytes moved.)  The sweep rows also
time a real two-worker RD sweep under both transports.

``runner transport-bench --json BENCH_transport.json`` records it;
``benchmarks/test_bench_transport.py`` is the CI entry point.
"""

from __future__ import annotations

import glob
import os
import pickle
from dataclasses import dataclass

from repro.codec.decoder import FrameIndex, decode_bitstream
from repro.codec.encoder import encode_sequence
from repro.parallel.jobs import ParseFrameJob
from repro.video.synthesis.sequences import make_sequence

# Re-exported for the runner's --json flag (same merge convention).
from repro.experiments.decode_bench import write_records  # noqa: F401
from repro.experiments.stream_bench import _best_of


def shm_segments() -> list[str]:
    """Live ``repro-*`` shared-memory segments (Linux: ``/dev/shm``).
    The leak-check quantity; empty on other platforms, where the
    in-test arena assertions still cover the refcount logic."""
    return sorted(glob.glob("/dev/shm/repro-*"))


@dataclass(frozen=True)
class TransportBenchResult:
    """One transport benchmark's outcome."""

    sequence: str
    frames: int
    qp: int
    jobs: int
    bitstream_bytes: int
    #: Mean pickled size of one frame's parse-job spec, both transports.
    spec_pickle_bytes_plain: float
    spec_pickle_bytes_shm: float
    #: Mean *payload* bytes riding in that pickle (shm must be ~0).
    payload_bytes_per_frame_plain: float
    payload_bytes_per_frame_shm: float
    #: Mean pickled size of one frame's parsed-symbol result.
    result_pickle_bytes_plain: float
    result_pickle_bytes_shm: float
    decode_plain_ms: float
    decode_shm_ms: float
    #: Both parallel transports == the serial decode, bit for bit.
    decode_identical: bool
    #: /dev/shm swept clean after every pass.
    no_leaks: bool
    machine_cpu_count: int

    @property
    def identical(self) -> bool:
        """The CI gate: identity held and nothing leaked."""
        return self.decode_identical and self.no_leaks

    @property
    def shm_speedup(self) -> float:
        """Shm-transport vs pickling decode at the same job count."""
        return self.decode_plain_ms / self.decode_shm_ms

    @property
    def pickle_shrink(self) -> float:
        """How many times smaller the spec pickle got (plain / shm)."""
        return self.spec_pickle_bytes_plain / max(self.spec_pickle_bytes_shm, 1.0)

    def records(self) -> dict[str, float]:
        """Payload for ``BENCH_transport.json`` (timings ``_ms``, gated
        ratio contains ``speedup``, byte counts are info).  The
        ``transport_`` prefix also tells the regression gate to skip
        speedup gating on single-core machines."""
        return {
            "transport_spec_pickle_bytes_plain": self.spec_pickle_bytes_plain,
            "transport_spec_pickle_bytes_shm": self.spec_pickle_bytes_shm,
            "transport_payload_bytes_per_frame_plain": self.payload_bytes_per_frame_plain,
            "transport_payload_bytes_per_frame_shm": self.payload_bytes_per_frame_shm,
            "transport_result_pickle_bytes_plain": self.result_pickle_bytes_plain,
            "transport_result_pickle_bytes_shm": self.result_pickle_bytes_shm,
            "transport_decode_plain_ms": self.decode_plain_ms,
            "transport_decode_shm_ms": self.decode_shm_ms,
            "transport_shm_speedup": self.shm_speedup,
            "machine_cpu_count": float(self.machine_cpu_count),
        }

    def as_text(self) -> str:
        return (
            f"transport bench: {self.sequence}, {self.frames} frames, qp={self.qp}, "
            f"{self.bitstream_bytes} bytes (v2), --jobs {self.jobs}\n"
            f"  bit-identical (shm == pickling == serial): {self.decode_identical}; "
            f"/dev/shm clean: {self.no_leaks}\n"
            f"  per-frame spec pickle: {self.spec_pickle_bytes_plain:.0f} B plain "
            f"-> {self.spec_pickle_bytes_shm:.0f} B shm "
            f"({self.pickle_shrink:.1f}x smaller; payload bytes "
            f"{self.payload_bytes_per_frame_plain:.0f} -> "
            f"{self.payload_bytes_per_frame_shm:.0f})\n"
            f"  per-frame result pickle: {self.result_pickle_bytes_plain:.0f} B plain "
            f"-> {self.result_pickle_bytes_shm:.0f} B shm\n"
            f"  decode --jobs {self.jobs}: plain {self.decode_plain_ms:.1f} ms vs "
            f"shm {self.decode_shm_ms:.1f} ms -> {self.shm_speedup:.2f}x "
            f"({self.machine_cpu_count} cpu)"
        )


def run_transport_bench(
    sequence: str = "foreman",
    frames: int = 12,
    qp: int = 16,
    estimator: str = "tss",
    seed: int = 0,
    rounds: int = 3,
    jobs: int = 2,
    clip=None,
) -> TransportBenchResult:
    """Encode ``frames`` of a synthetic clip as version 2, then measure
    the transport cost of its parallel decode both ways.

    The pickled-size numbers come from the actual job specs and parsed
    results of this stream; the timing is ``decode_bitstream`` at
    ``jobs`` workers with ``use_shm`` off vs on, bit-identity against
    the serial decode verified before anything is timed.
    """
    from repro.transport import FrameArena, FrameStore, export, materialize, payload_bytes

    if clip is None:
        clip = make_sequence(sequence, frames=frames, seed=seed)
    encode = encode_sequence(clip, qp=qp, estimator=estimator, bitstream_version=2)
    bitstream = encode.bitstream
    frames = len(clip)

    # -- what one frame costs to ship ----------------------------------
    index = FrameIndex.scan(bitstream)
    specs = [ParseFrameJob(payload=index.payload(bitstream, i)) for i in range(len(index))]
    parsed = [spec.run() for spec in specs]
    spec_plain = [len(pickle.dumps(spec)) for spec in specs]
    payload_plain = [payload_bytes(spec.payload) for spec in specs]
    result_plain = [len(pickle.dumps(p)) for p in parsed]
    with FrameArena(name_prefix="repro-bench") as arena:
        store = FrameStore(arena)
        packed = [spec.pack_shm(store) for spec in specs]
        spec_shm = [len(pickle.dumps(spec)) for spec in packed]
        # A packed spec's payload rides as a handle: zero payload bytes.
        payload_shm = [payload_bytes(spec.payload) if spec.payload else 0 for spec in packed]
    shared = [export(p, name_prefix="repro-bench") for p in parsed]
    result_shm = [len(pickle.dumps(s)) for s in shared]
    restored = [materialize(s, unlink=True) for s in shared]
    decode_identical = restored == parsed

    # -- end-to-end: parallel decode, both transports ------------------
    serial = decode_bitstream(bitstream)
    plain = decode_bitstream(bitstream, jobs=jobs)
    shm = decode_bitstream(bitstream, jobs=jobs, use_shm=True)
    for candidate in (plain, shm):
        if not (len(candidate) == len(serial) and all(a == b for a, b in zip(candidate, serial))):
            decode_identical = False
    no_leaks = not shm_segments()

    plain_s = _best_of(lambda: decode_bitstream(bitstream, jobs=jobs), rounds)
    shm_s = _best_of(lambda: decode_bitstream(bitstream, jobs=jobs, use_shm=True), rounds)
    no_leaks = no_leaks and not shm_segments()

    def mean(values) -> float:
        return sum(values) / max(len(values), 1)

    return TransportBenchResult(
        sequence=encode.name,
        frames=frames,
        qp=encode.qp,
        jobs=jobs,
        bitstream_bytes=len(bitstream),
        spec_pickle_bytes_plain=mean(spec_plain),
        spec_pickle_bytes_shm=mean(spec_shm),
        payload_bytes_per_frame_plain=mean(payload_plain),
        payload_bytes_per_frame_shm=mean(payload_shm),
        result_pickle_bytes_plain=mean(result_plain),
        result_pickle_bytes_shm=mean(result_shm),
        decode_plain_ms=plain_s * 1000.0,
        decode_shm_ms=shm_s * 1000.0,
        decode_identical=decode_identical,
        no_leaks=no_leaks,
        machine_cpu_count=os.cpu_count() or 1,
    )


class _ByValueStore:
    """:class:`~repro.transport.FrameStore` stand-in whose "handles" are
    the arrays themselves: packing a spec against it yields the
    frames-inline twin the shm pickles are compared to.  The twin is a
    sizing artifact only — it never runs."""

    def place(self, array):
        return array

    def source_frames(self, name, config):
        from repro.parallel.jobs import rendered_source

        return rendered_source(name, config)

    def rig_frames(self, motions, geometry, p, seed):
        from repro.experiments.fig4_characterization import rig_frames_cached

        return tuple(rig_frames_cached(tuple(motions), geometry, p, seed))


def _spec_payload(job) -> float:
    """Array/bytes payload riding in one job spec's fields (nested cell
    lists included).  Zero for a fully packed shm spec — handles carry
    no payload."""
    from dataclasses import fields

    from repro.parallel.jobs import JobSpec
    from repro.transport import payload_bytes

    total = 0.0
    for spec_field in fields(job):
        value = getattr(job, spec_field.name)
        if isinstance(value, tuple) and value and isinstance(value[0], JobSpec):
            total += sum(_spec_payload(item) for item in value)
        else:
            total += payload_bytes(value)
    return total


@dataclass(frozen=True)
class TransportSweepResult:
    """Transport cost of the experiment fan-out specs, both ways."""

    sequence: str
    frames: int
    qp: int
    jobs: int
    #: Pickled spec bytes: by-value twin vs shm-packed, per spec kind.
    encode_spec_bytes_value: float
    encode_spec_bytes_shm: float
    sweepjob_spec_bytes_value: float
    sweepjob_spec_bytes_shm: float
    fig4_spec_bytes_value: float
    fig4_spec_bytes_shm: float
    #: Mean payload bytes riding in one packed spec (shm must be 0).
    payload_bytes_per_job_value: float
    payload_bytes_per_job_shm: float
    #: Two-worker RD sweep wall clock, pickling vs shm transport.
    sweep_plain_ms: float
    sweep_shm_ms: float
    #: Both transports produced identical sweep cells.
    sweep_identical: bool
    #: /dev/shm swept clean after every pass.
    no_leaks: bool
    machine_cpu_count: int

    @property
    def identical(self) -> bool:
        """The CI gate: identity held and nothing leaked."""
        return self.sweep_identical and self.no_leaks

    @property
    def shm_speedup(self) -> float:
        return self.sweep_plain_ms / self.sweep_shm_ms

    @property
    def encode_pickle_shrink(self) -> float:
        return self.encode_spec_bytes_value / max(self.encode_spec_bytes_shm, 1.0)

    @property
    def sweepjob_pickle_shrink(self) -> float:
        return self.sweepjob_spec_bytes_value / max(self.sweepjob_spec_bytes_shm, 1.0)

    @property
    def fig4_pickle_shrink(self) -> float:
        return self.fig4_spec_bytes_value / max(self.fig4_spec_bytes_shm, 1.0)

    def records(self) -> dict[str, float]:
        """Sweep rows for ``BENCH_transport.json``.  ``shrink`` keys
        gate as higher-is-better on every machine; the ``speedup`` key
        is multi-core-only (``transport_`` prefix + single-core skip in
        ``check_regression.py``); byte counts are info."""
        return {
            "transport_sweep_encode_spec_bytes_value": self.encode_spec_bytes_value,
            "transport_sweep_encode_spec_bytes_shm": self.encode_spec_bytes_shm,
            "transport_sweep_encode_pickle_shrink": self.encode_pickle_shrink,
            "transport_sweep_sweepjob_spec_bytes_value": self.sweepjob_spec_bytes_value,
            "transport_sweep_sweepjob_spec_bytes_shm": self.sweepjob_spec_bytes_shm,
            "transport_sweep_sweepjob_pickle_shrink": self.sweepjob_pickle_shrink,
            "transport_sweep_fig4_spec_bytes_value": self.fig4_spec_bytes_value,
            "transport_sweep_fig4_spec_bytes_shm": self.fig4_spec_bytes_shm,
            "transport_sweep_fig4_pickle_shrink": self.fig4_pickle_shrink,
            "transport_sweep_payload_bytes_per_job_value": self.payload_bytes_per_job_value,
            "transport_sweep_payload_bytes_per_job_shm": self.payload_bytes_per_job_shm,
            "transport_sweep_plain_ms": self.sweep_plain_ms,
            "transport_sweep_shm_ms": self.sweep_shm_ms,
            "transport_sweep_shm_speedup": self.shm_speedup,
            "machine_cpu_count": float(self.machine_cpu_count),
        }

    def as_text(self) -> str:
        return (
            f"transport sweep bench: {self.sequence}, {self.frames} frames, "
            f"qp={self.qp}, --jobs {self.jobs}\n"
            f"  identical cells (shm == pickling): {self.sweep_identical}; "
            f"/dev/shm clean: {self.no_leaks}\n"
            f"  EncodeJob spec: {self.encode_spec_bytes_value:.0f} B by-value -> "
            f"{self.encode_spec_bytes_shm:.0f} B shm "
            f"({self.encode_pickle_shrink:.1f}x smaller)\n"
            f"  SweepJob spec: {self.sweepjob_spec_bytes_value:.0f} B by-value -> "
            f"{self.sweepjob_spec_bytes_shm:.0f} B shm "
            f"({self.sweepjob_pickle_shrink:.1f}x smaller)\n"
            f"  Fig4PairJob spec: {self.fig4_spec_bytes_value:.0f} B by-value -> "
            f"{self.fig4_spec_bytes_shm:.0f} B shm "
            f"({self.fig4_pickle_shrink:.1f}x smaller)\n"
            f"  payload/job: {self.payload_bytes_per_job_value:.0f} B by-value -> "
            f"{self.payload_bytes_per_job_shm:.0f} B shm\n"
            f"  rd sweep --jobs {self.jobs}: plain {self.sweep_plain_ms:.1f} ms vs "
            f"shm {self.sweep_shm_ms:.1f} ms -> {self.shm_speedup:.2f}x "
            f"({self.machine_cpu_count} cpu)"
        )


def run_transport_sweep_bench(
    sequence: str = "foreman",
    frames: int = 12,
    qp: int = 16,
    estimator: str = "tss",
    seed: int = 0,
    rounds: int = 3,
    jobs: int = 2,
) -> TransportSweepResult:
    """Measure what the experiment fan-out specs cost to ship.

    Three spec kinds are packed twice — against a real
    :class:`~repro.transport.FrameStore` (handles) and against the
    by-value twin store (frames inline) — and their pickles compared;
    then a small two-worker RD sweep runs under both transports,
    identity-checked cell for cell and leak-checked in ``/dev/shm``.
    """
    from repro.experiments.config import ExperimentConfig
    from repro.experiments.fig4_characterization import DEFAULT_GLOBAL_MOTIONS
    from repro.experiments.rd_curves import run_rd_sweep
    from repro.parallel.jobs import EncodeJob, Fig4PairJob, SweepJob
    from repro.transport import FrameArena, FrameStore
    from repro.video.frame import QCIF

    config = ExperimentConfig(
        # The sweep needs a valid experiment config; the decode bench
        # accepts shorter clips, so clamp up to its 4-frame floor.
        sequences=(sequence,), qps=(qp,), frames=max(frames, 4), seed=seed
    )
    encode_job = EncodeJob(
        sequence=sequence, fps=config.fps_list[0], estimator=estimator, qp=qp, config=config
    )
    sweep_job = SweepJob(config=config, estimators=(estimator,))
    fig4_job = Fig4PairJob(
        pair_index=0, motions=DEFAULT_GLOBAL_MOTIONS, geometry=QCIF, seed=seed
    )
    specs = (encode_job, sweep_job, fig4_job)

    by_value = _ByValueStore()
    value_packed = [spec.pack_shm(by_value) for spec in specs]
    value_sizes = [len(pickle.dumps(spec)) for spec in value_packed]
    value_payloads = [_spec_payload(spec) for spec in value_packed]
    with FrameArena(name_prefix="repro-bench") as arena:
        store = FrameStore(arena)
        shm_packed = [spec.pack_shm(store) for spec in specs]
        shm_sizes = [len(pickle.dumps(spec)) for spec in shm_packed]
        shm_payloads = [_spec_payload(spec) for spec in shm_packed]
    no_leaks = not shm_segments()

    plain_sweep = run_rd_sweep(config, estimators=(estimator,), jobs=jobs, use_shm=False)
    shm_sweep = run_rd_sweep(config, estimators=(estimator,), jobs=jobs, use_shm=True)
    sweep_identical = plain_sweep.cells == shm_sweep.cells
    no_leaks = no_leaks and not shm_segments()

    plain_s = _best_of(
        lambda: run_rd_sweep(config, estimators=(estimator,), jobs=jobs, use_shm=False),
        rounds,
    )
    shm_s = _best_of(
        lambda: run_rd_sweep(config, estimators=(estimator,), jobs=jobs, use_shm=True),
        rounds,
    )
    no_leaks = no_leaks and not shm_segments()

    def mean(values) -> float:
        return sum(values) / max(len(values), 1)

    return TransportSweepResult(
        sequence=sequence,
        frames=frames,
        qp=qp,
        jobs=jobs,
        encode_spec_bytes_value=float(value_sizes[0]),
        encode_spec_bytes_shm=float(shm_sizes[0]),
        sweepjob_spec_bytes_value=float(value_sizes[1]),
        sweepjob_spec_bytes_shm=float(shm_sizes[1]),
        fig4_spec_bytes_value=float(value_sizes[2]),
        fig4_spec_bytes_shm=float(shm_sizes[2]),
        payload_bytes_per_job_value=mean(value_payloads),
        payload_bytes_per_job_shm=mean(shm_payloads),
        sweep_plain_ms=plain_s * 1000.0,
        sweep_shm_ms=shm_s * 1000.0,
        sweep_identical=sweep_identical,
        no_leaks=no_leaks,
        machine_cpu_count=os.cpu_count() or 1,
    )
