"""Whole-frame decode throughput: batched reconstruction vs per-block.

Not a paper table — this is the serving-side counterpart of the kernel
benchmarks: encode a clip once, then decode the emitted bitstream
through both reconstruction paths (the engine's batched kernels and the
seed per-block loop) and report the speedup.  The run always verifies
bit-identity first (both decodes against each other *and* against the
encoder's closed-loop reconstruction), so a reported speedup can never
come from a path that changed the pixels.

``repro.experiments.runner decode-bench`` exposes this as a CLI mode;
``benchmarks/test_bench_decode.py`` records the numbers to
``BENCH_decode.json`` for CI's regression gate.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path

from repro.codec.decoder import decode_bitstream
from repro.codec.encoder import encode_sequence
from repro.parallel import DecodeJob, run_jobs
from repro.video.synthesis.sequences import make_sequence


@dataclass(frozen=True)
class DecodeBenchResult:
    """One decode benchmark's outcome."""

    sequence: str
    frames: int
    qp: int
    estimator: str
    bitstream_bytes: int
    per_block_ms: float
    batched_ms: float
    identical: bool

    @property
    def speedup(self) -> float:
        return self.per_block_ms / self.batched_ms

    def records(self) -> dict[str, float]:
        """The machine-readable payload for ``BENCH_decode.json`` —
        timing keys end in ``_ms`` (lower is better), ratio keys contain
        ``speedup`` (higher is better), matching the regression gate's
        key classification."""
        return {
            "decode_per_block_ms": self.per_block_ms,
            "decode_batched_ms": self.batched_ms,
            "decode_speedup": self.speedup,
        }

    def as_text(self) -> str:
        return (
            f"decode bench: {self.sequence}, {self.frames} frames, qp={self.qp}, "
            f"{self.estimator}, {self.bitstream_bytes} bytes\n"
            f"  bit-identical (batched == per-block == encoder loop): {self.identical}\n"
            f"  per-block {self.per_block_ms:.1f} ms, batched {self.batched_ms:.1f} ms "
            f"-> speedup {self.speedup:.2f}x"
        )


def _best_of(fn, rounds: int) -> float:
    best = float("inf")
    for _ in range(max(1, rounds)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run_decode_bench(
    sequence: str = "foreman",
    frames: int = 9,
    qp: int = 16,
    estimator: str = "fsbm",
    seed: int = 0,
    rounds: int = 3,
    encode=None,
    jobs: int = 1,
) -> DecodeBenchResult:
    """Encode ``frames`` of a synthetic clip, then time both decode
    paths over the same bitstream (best of ``rounds``).

    Pass a prebuilt ``EncodeResult`` (with ``keep_reconstruction=True``
    and matching parameters) via ``encode`` to skip the encode — the
    benchmark suite reuses one shared encode across its tests.
    ``jobs > 1`` runs the two *verification* decodes as parallel
    :class:`repro.parallel.DecodeJob` specs; the timed decodes always
    run serially in this process (anything else would corrupt the
    wall-clock comparison).
    """
    if encode is None:
        clip = make_sequence(sequence, frames=frames, seed=seed)
        encode = encode_sequence(clip, qp=qp, estimator=estimator, keep_reconstruction=True)
    elif not encode.reconstruction:
        raise ValueError("prebuilt encode needs keep_reconstruction=True for bit-identity checks")
    else:
        sequence, qp, estimator = encode.name, encode.qp, encode.estimator_name
        frames = len(encode.reconstruction)
    bitstream = encode.bitstream
    batched, per_block = run_jobs(
        [DecodeJob(bitstream, use_engine=True), DecodeJob(bitstream, use_engine=False)],
        workers=jobs,
        base_seed=seed,
    )
    identical = (
        len(batched) == len(per_block) == len(encode.reconstruction)
        and all(b == s for b, s in zip(batched, per_block))
        and all(b == r for b, r in zip(batched, encode.reconstruction))
    )
    batched_s = _best_of(lambda: decode_bitstream(bitstream, use_engine=True), rounds)
    per_block_s = _best_of(lambda: decode_bitstream(bitstream, use_engine=False), rounds)
    return DecodeBenchResult(
        sequence=sequence,
        frames=frames,
        qp=qp,
        estimator=estimator,
        bitstream_bytes=len(bitstream),
        per_block_ms=per_block_s * 1000.0,
        batched_ms=batched_s * 1000.0,
        identical=identical,
    )


def write_records(records: dict[str, float], path: Path) -> None:
    """Merge ``records`` into the JSON file at ``path`` (the same
    update-in-place convention as ``BENCH_kernels.json``)."""
    existing: dict[str, float] = {}
    if path.exists():
        try:
            existing = json.loads(path.read_text())
        except ValueError:
            existing = {}
    existing.update(records)
    path.write_text(json.dumps(existing, indent=2, sort_keys=True) + "\n")
