"""Decode throughput experiments: reconstruction paths and symbol parse.

Not a paper table — this is the serving-side counterpart of the kernel
benchmarks, covering the decoder's two cost axes:

* :func:`run_decode_bench` — whole-stream decode through the batched
  engine reconstruction vs the seed per-block loop (bit-identity
  verified first, against each other *and* the encoder's closed-loop
  reconstruction).  With ``bitstream_version=2`` the verification set
  also covers the start-code frame index and the parallel symbol parse
  (``decode_bitstream(..., jobs=N)`` vs serial).
* :func:`run_parse_bench` — the symbol parse alone: the LUT + word-level
  reader against the seed per-bit reader over the same bytes, after
  asserting both produce identical :class:`ParsedPicture` symbols.  The
  reconstruction-only cost of the parsed stream is timed alongside, so
  parse vs reconstruct shares are reported separately
  (``runner decode-bench --parse-only``).

``repro.experiments.runner decode-bench`` exposes both as CLI modes;
``benchmarks/test_bench_decode.py`` / ``test_bench_vlc.py`` record the
numbers to ``BENCH_decode.json`` / ``BENCH_vlc.json`` for CI's
regression gate.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path

from repro.codec.bitstream import ScalarBitReader
from repro.codec.decoder import (
    FrameIndex,
    decode_bitstream,
    parse_bitstream_symbols,
    reconstruct_picture,
)
from repro.codec.encoder import encode_sequence
from repro.parallel import DecodeJob, run_jobs
from repro.video.synthesis.sequences import make_sequence


@dataclass(frozen=True)
class DecodeBenchResult:
    """One decode benchmark's outcome."""

    sequence: str
    frames: int
    qp: int
    estimator: str
    bitstream_bytes: int
    per_block_ms: float
    batched_ms: float
    #: Batched decode == per-block decode == encoder closed loop.
    reconstruction_identical: bool
    bitstream_version: int = 1
    #: v2 only: indexed parallel parse == serial decode (None for v1).
    parallel_identical: bool | None = None

    @property
    def identical(self) -> bool:
        """Every verified identity held (the CI gate)."""
        return self.reconstruction_identical and self.parallel_identical is not False

    @property
    def speedup(self) -> float:
        return self.per_block_ms / self.batched_ms

    def records(self) -> dict[str, float]:
        """The machine-readable payload for ``BENCH_decode.json`` —
        timing keys end in ``_ms`` (lower is better), ratio keys contain
        ``speedup`` (higher is better), matching the regression gate's
        key classification.  Version-2 runs get version-suffixed keys so
        recording one never collides with the v1 keys the committed
        baselines gate on (a framed, padded stream is a different
        workload)."""
        prefix = "decode" if self.bitstream_version == 1 else "decode_v2"
        return {
            f"{prefix}_per_block_ms": self.per_block_ms,
            f"{prefix}_batched_ms": self.batched_ms,
            f"{prefix}_speedup": self.speedup,
        }

    def as_text(self) -> str:
        lines = [
            f"decode bench: {self.sequence}, {self.frames} frames, qp={self.qp}, "
            f"{self.estimator}, {self.bitstream_bytes} bytes (v{self.bitstream_version})",
            f"  bit-identical (batched == per-block == encoder loop): "
            f"{self.reconstruction_identical}",
        ]
        if self.parallel_identical is not None:
            lines.append(
                f"  parallel parse (jobs >= 2) == serial decode: {self.parallel_identical}"
            )
        lines.append(
            f"  per-block {self.per_block_ms:.1f} ms, batched {self.batched_ms:.1f} ms "
            f"-> speedup {self.speedup:.2f}x"
        )
        return "\n".join(lines)


@dataclass(frozen=True)
class ParseBenchResult:
    """Symbol-parse benchmark: LUT + word reader vs the seed per-bit
    reader, with the batched reconstruction cost for scale."""

    sequence: str
    frames: int
    qp: int
    estimator: str
    bitstream_bytes: int
    parse_lut_ms: float
    parse_seed_ms: float
    reconstruct_ms: float
    identical: bool

    @property
    def parse_speedup(self) -> float:
        return self.parse_seed_ms / self.parse_lut_ms

    @property
    def parse_mbps(self) -> float:
        """Parse throughput of the LUT path in Mbit/s of bitstream."""
        return self.bitstream_bytes * 8 / (self.parse_lut_ms / 1000.0) / 1e6

    def records(self) -> dict[str, float]:
        """Payload for ``BENCH_vlc.json`` (same key conventions as the
        other records; ``vlc_parse_mbps`` is informational)."""
        return {
            "vlc_parse_lut_ms": self.parse_lut_ms,
            "vlc_parse_seed_ms": self.parse_seed_ms,
            "vlc_parse_speedup": self.parse_speedup,
            "vlc_parse_mbps": self.parse_mbps,
            "vlc_reconstruct_ms": self.reconstruct_ms,
        }

    def as_text(self) -> str:
        total = self.parse_lut_ms + self.reconstruct_ms
        return (
            f"parse bench: {self.sequence}, {self.frames} frames, qp={self.qp}, "
            f"{self.estimator}, {self.bitstream_bytes} bytes\n"
            f"  symbols identical (LUT reader == seed bit reader): {self.identical}\n"
            f"  parse: LUT {self.parse_lut_ms:.1f} ms vs seed {self.parse_seed_ms:.1f} ms "
            f"-> speedup {self.parse_speedup:.2f}x ({self.parse_mbps:.2f} Mbit/s)\n"
            f"  decode split: parse {self.parse_lut_ms:.1f} ms + "
            f"reconstruct {self.reconstruct_ms:.1f} ms "
            f"({self.parse_lut_ms / total:.0%} parse)"
        )


def _best_of(fn, rounds: int) -> float:
    best = float("inf")
    for _ in range(max(1, rounds)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _prepare_encode(sequence, frames, qp, estimator, seed, encode, bitstream_version=1):
    """Shared encode handling for both benches: build one, or validate
    and adopt the caller's prebuilt ``EncodeResult``."""
    if encode is None:
        clip = make_sequence(sequence, frames=frames, seed=seed)
        encode = encode_sequence(
            clip, qp=qp, estimator=estimator, keep_reconstruction=True,
            bitstream_version=bitstream_version,
        )
    elif not encode.reconstruction:
        raise ValueError("prebuilt encode needs keep_reconstruction=True for bit-identity checks")
    elif encode.bitstream_version != bitstream_version:
        raise ValueError(
            f"prebuilt encode is bitstream v{encode.bitstream_version}, "
            f"bench wants v{bitstream_version}"
        )
    return encode


def run_decode_bench(
    sequence: str = "foreman",
    frames: int = 9,
    qp: int = 16,
    estimator: str = "fsbm",
    seed: int = 0,
    rounds: int = 3,
    encode=None,
    jobs: int = 1,
    bitstream_version: int = 1,
    use_shm: bool = False,
) -> DecodeBenchResult:
    """Encode ``frames`` of a synthetic clip, then time both decode
    paths over the same bitstream (best of ``rounds``).

    Pass a prebuilt ``EncodeResult`` (with ``keep_reconstruction=True``
    and matching parameters) via ``encode`` to skip the encode — the
    benchmark suite reuses one shared encode across its tests.
    ``jobs > 1`` runs the two *verification* decodes as parallel
    :class:`repro.parallel.DecodeJob` specs; the timed decodes always
    run serially in this process (anything else would corrupt the
    wall-clock comparison).

    ``bitstream_version=2`` additionally scans the stream with
    :class:`~repro.codec.decoder.FrameIndex` and verifies the parallel
    symbol parse: ``decode_bitstream(..., jobs=max(jobs, 2))`` must be
    bit-identical to the serial decode — the CI smoke path for the v2
    encode→index→parallel-parse→decode pipeline.

    ``use_shm=True`` runs every parallel verification decode over the
    shared-memory transport (``run_jobs(..., use_shm=True)``) — the CI
    byte-identity smoke for PR 6's zero-copy path.  Timings are
    unaffected (the timed decodes are always serial and in-process).
    """
    encode = _prepare_encode(
        sequence, frames, qp, estimator, seed, encode, bitstream_version
    )
    sequence, qp, estimator = encode.name, encode.qp, encode.estimator_name
    frames = len(encode.reconstruction)
    bitstream = encode.bitstream
    batched, per_block = run_jobs(
        [DecodeJob(bitstream, use_engine=True), DecodeJob(bitstream, use_engine=False)],
        workers=jobs,
        base_seed=seed,
        use_shm=use_shm,
    )
    reconstruction_identical = (
        len(batched) == len(per_block) == len(encode.reconstruction)
        and all(b == s for b, s in zip(batched, per_block))
        and all(b == r for b, r in zip(batched, encode.reconstruction))
    )
    parallel_identical = None
    if bitstream_version == 2:
        index = FrameIndex.scan(bitstream)
        parallel = decode_bitstream(
            bitstream, jobs=max(jobs, 2), base_seed=seed, use_shm=use_shm
        )
        parallel_identical = len(index) == len(parallel) == len(batched) and all(
            p == b for p, b in zip(parallel, batched)
        )
    batched_s = _best_of(lambda: decode_bitstream(bitstream, use_engine=True), rounds)
    per_block_s = _best_of(lambda: decode_bitstream(bitstream, use_engine=False), rounds)
    return DecodeBenchResult(
        sequence=sequence,
        frames=frames,
        qp=qp,
        estimator=estimator,
        bitstream_bytes=len(bitstream),
        per_block_ms=per_block_s * 1000.0,
        batched_ms=batched_s * 1000.0,
        reconstruction_identical=reconstruction_identical,
        bitstream_version=bitstream_version,
        parallel_identical=parallel_identical,
    )


def run_parse_bench(
    sequence: str = "foreman",
    frames: int = 9,
    qp: int = 16,
    estimator: str = "fsbm",
    seed: int = 0,
    rounds: int = 3,
    encode=None,
) -> ParseBenchResult:
    """Time the symbol parse alone, LUT + word reader vs seed reader.

    Both paths parse the identical (version-1) bytes; their
    :class:`~repro.codec.decoder.ParsedPicture` outputs are compared
    symbol-for-symbol before anything is timed, and the parsed stream
    is reconstructed once to report the parse/reconstruct split.
    """
    encode = _prepare_encode(sequence, frames, qp, estimator, seed, encode)
    sequence, qp, estimator = encode.name, encode.qp, encode.estimator_name
    frames = len(encode.reconstruction)
    bitstream = encode.bitstream
    parsed_lut = parse_bitstream_symbols(bitstream)
    parsed_seed = parse_bitstream_symbols(bitstream, reader_factory=ScalarBitReader)
    identical = len(parsed_lut) == len(parsed_seed) == frames and all(
        a == b for a, b in zip(parsed_lut, parsed_seed)
    )

    def reconstruct_all() -> None:
        reference = None
        for i, picture in enumerate(parsed_lut):
            reference = reconstruct_picture(picture, reference, i)

    lut_s = _best_of(lambda: parse_bitstream_symbols(bitstream), rounds)
    seed_s = _best_of(
        lambda: parse_bitstream_symbols(bitstream, reader_factory=ScalarBitReader), rounds
    )
    reconstruct_s = _best_of(reconstruct_all, rounds)
    return ParseBenchResult(
        sequence=sequence,
        frames=frames,
        qp=qp,
        estimator=estimator,
        bitstream_bytes=len(bitstream),
        parse_lut_ms=lut_s * 1000.0,
        parse_seed_ms=seed_s * 1000.0,
        reconstruct_ms=reconstruct_s * 1000.0,
        identical=identical,
    )


def backend_stamp() -> dict[str, object]:
    """Provenance of the numbers: which kernel backend produced them.

    Stamped into every ``BENCH_*.json`` by :func:`write_records` —
    ``backend`` is the active backend's name, ``backend_numba_version``
    appears only when numba is importable, and ``machine_numba`` is the
    0/1 capability flag ``check_regression.py`` keys its conditional
    numba gates on.
    """
    from repro.kernels import get_backend, numba_available

    stamp: dict[str, object] = {
        "backend": get_backend().name,
        "machine_numba": 1 if numba_available() else 0,
    }
    if numba_available():
        import numba

        stamp["backend_numba_version"] = numba.__version__
    return stamp


def write_records(records: dict[str, float], path: Path) -> None:
    """Merge ``records`` into the JSON file at ``path`` (the same
    update-in-place convention as ``BENCH_kernels.json``), stamping
    backend provenance (:func:`backend_stamp`) alongside the numbers."""
    existing: dict[str, float] = {}
    if path.exists():
        try:
            existing = json.loads(path.read_text())
        except ValueError:
            existing = {}
    existing.update(records)
    existing.update(backend_stamp())
    path.write_text(json.dumps(existing, indent=2, sort_keys=True) + "\n")
