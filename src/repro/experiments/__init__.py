"""Experiment harnesses — one per paper table/figure.

* :mod:`repro.experiments.fig4_characterization` — the Fig. 3 rig that
  produces Fig. 4's (Intra_SAD, SAD_deviation) scatter classes.
* :mod:`repro.experiments.rd_curves` — the Qp sweeps behind Figs. 5
  (QCIF @ 30 fps) and 6 (QCIF @ 10 fps).
* :mod:`repro.experiments.table1_complexity` — average search positions
  per macroblock (Table 1).
* :mod:`repro.experiments.runner` — ``python -m repro.experiments.runner``
  command-line entry point.
"""

from repro.experiments.config import ExperimentConfig

__all__ = ["ExperimentConfig"]
