"""Observability-overhead benchmark: what does the instrumentation cost?

The tracing/metrics layer (:mod:`repro.obs`) promises **near-zero
disabled cost**: every instrumented seam calls a module-level helper
that checks one attribute (``TRACER.enabled``) and returns a shared
no-op, and the always-on metric counters are single integer adds.  This
bench measures that promise on the real workload — an encode→decode
round trip over a synthetic clip — in three modes:

* **bypassed** — the module-level trace helpers and the metric
  instrument methods monkeypatched to bare no-ops for the duration: the
  closest runnable stand-in for "instrumentation compiled out" (what
  remains is one module-attribute load per seam).
* **disabled** — the shipped default: tracer off, counters counting.
* **enabled** — full tracing, every span and phase recorded.

The gated claim is ``obs_disabled_speedup = bypassed / disabled``:
disabled-mode throughput must stay within 2% of the bypassed floor
(asserted here at the :data:`OVERHEAD_FLOOR`; the committed baseline in
``benchmarks/baselines/BENCH_obs.json`` is a conservative trend floor
below it).  Zero-interference is verified before anything is timed:
all three modes must emit byte-identical bitstreams.

``benchmarks/test_bench_obs.py`` records ``BENCH_obs.json`` for CI's
regression gate; the ``obs_`` prefix is deliberately absent from
``check_regression.py``'s multi-core-only list, so the overhead ratio
gates on single-core runners too (no parallel hardware is involved).
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass

from repro.codec.decoder import decode_bitstream
from repro.codec.encoder import encode_sequence
from repro.obs import metrics, trace
from repro.video.synthesis.sequences import make_sequence

# Re-exported for the bench suite (same merge convention).
from repro.experiments.decode_bench import write_records  # noqa: F401

#: Disabled-mode throughput must be at least this fraction of the
#: bypassed floor (the ISSUE's "within 2%" acceptance bound).
OVERHEAD_FLOOR = 0.98


@contextmanager
def instrumentation_bypassed():
    """Monkeypatch every obs entry point the seams use to a bare no-op.

    This is the measurement baseline, not a production switch: the
    instrumented modules call ``trace.span(...)`` through the module
    attribute and hold direct references to their metric instruments,
    so replacing the module functions and the instrument *methods*
    removes all instrumentation work except one attribute load per
    seam.  Always restores, even when the workload raises.
    """
    saved_trace = (trace.span, trace.phases, trace.instant, trace.begin, trace.end)
    saved_metrics = (
        metrics.Counter.inc,
        metrics.Counter.advance_to,
        metrics.Gauge.set,
        metrics.Gauge.add,
        metrics.Histogram.observe,
    )
    noop_span, noop_phases = trace._NOOP_SPAN, trace._NOOP_PHASES
    trace.span = lambda name, **attrs: noop_span
    trace.phases = lambda: noop_phases
    trace.instant = lambda name, **attrs: None
    trace.begin = lambda name, **attrs: None
    trace.end = lambda token: None
    metrics.Counter.inc = lambda self, amount=1: None
    metrics.Counter.advance_to = lambda self, value: None
    metrics.Gauge.set = lambda self, value: None
    metrics.Gauge.add = lambda self, delta: None
    metrics.Histogram.observe = lambda self, value: None
    try:
        yield
    finally:
        trace.span, trace.phases, trace.instant, trace.begin, trace.end = saved_trace
        (
            metrics.Counter.inc,
            metrics.Counter.advance_to,
            metrics.Gauge.set,
            metrics.Gauge.add,
            metrics.Histogram.observe,
        ) = saved_metrics


@dataclass(frozen=True)
class ObsBenchResult:
    """One observability-overhead measurement."""

    sequence: str
    frames: int
    qp: int
    estimator: str
    bitstream_bytes: int
    bypassed_ms: float
    disabled_ms: float
    enabled_ms: float
    #: Events one fully traced round trip records.
    trace_events: int
    #: Bitstreams byte-identical across all three modes.
    identical: bool
    machine_cpu_count: int

    @property
    def disabled_speedup(self) -> float:
        """Disabled-mode throughput as a fraction of the bypassed floor
        (1.0 = free; the gated number)."""
        return self.bypassed_ms / self.disabled_ms

    @property
    def enabled_ratio(self) -> float:
        """Fully traced throughput vs the bypassed floor (informational
        — tracing is allowed to cost; it must not cost when off)."""
        return self.bypassed_ms / self.enabled_ms

    @property
    def within_overhead(self) -> bool:
        return self.disabled_speedup >= OVERHEAD_FLOOR

    def records(self) -> dict[str, float]:
        """Payload for ``BENCH_obs.json``.  ``obs_disabled_speedup``
        gates (higher is better, all machines); the ``_ms`` rows and the
        enabled ratio are trend info."""
        return {
            "obs_bypassed_ms": self.bypassed_ms,
            "obs_disabled_ms": self.disabled_ms,
            "obs_enabled_ms": self.enabled_ms,
            "obs_disabled_speedup": self.disabled_speedup,
            "obs_enabled_ratio": self.enabled_ratio,
            "obs_trace_events": float(self.trace_events),
            "machine_cpu_count": float(self.machine_cpu_count),
        }

    def as_text(self) -> str:
        return (
            f"obs bench: {self.sequence}, {self.frames} frames, qp={self.qp}, "
            f"{self.estimator}, {self.bitstream_bytes} bytes\n"
            f"  byte-identical (bypassed == disabled == traced): {self.identical}\n"
            f"  bypassed {self.bypassed_ms:.1f} ms, disabled {self.disabled_ms:.1f} ms "
            f"-> {self.disabled_speedup:.3f}x of floor "
            f"(gate >= {OVERHEAD_FLOOR:.2f}: {self.within_overhead})\n"
            f"  traced {self.enabled_ms:.1f} ms -> {self.enabled_ratio:.3f}x of floor, "
            f"{self.trace_events} events ({self.machine_cpu_count} cpu)"
        )


def _round_trip(clip, qp: int, estimator: str) -> bytes:
    """The timed workload: encode the clip and decode the bytes back —
    every instrumented codec seam (ME, transform/quant, entropy, parse,
    reconstruct) runs."""
    encode = encode_sequence(clip, qp=qp, estimator=estimator, keep_reconstruction=False)
    decode_bitstream(encode.bitstream)
    return encode.bitstream


def _time_once(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def run_obs_bench(
    sequence: str = "foreman",
    frames: int = 8,
    qp: int = 16,
    estimator: str = "tss",
    seed: int = 0,
    rounds: int = 5,
    clip=None,
) -> ObsBenchResult:
    """Measure the three instrumentation modes over one workload,
    best-of ``rounds`` each, verifying byte-identity first.

    The tracer is drained between traced rounds so the event buffer
    does not grow across repetitions; the caller's tracer state (off,
    empty) is restored on return.
    """
    if clip is None:
        clip = make_sequence(sequence, frames=frames, seed=seed)

    # -- zero-interference: identical bytes in every mode --------------
    with instrumentation_bypassed():
        bitstream_bypassed = _round_trip(clip, qp, estimator)
    bitstream_disabled = _round_trip(clip, qp, estimator)
    trace.TRACER.enable()
    try:
        bitstream_traced = _round_trip(clip, qp, estimator)
        trace_events = len(trace.TRACER.drain())
    finally:
        trace.TRACER.disable()
        trace.TRACER.drain()
    identical = bitstream_bypassed == bitstream_disabled == bitstream_traced

    # -- timings --------------------------------------------------------
    # The three modes interleave within each round (bypassed, disabled,
    # traced, repeat) so slow drift on a shared machine — the dominant
    # error at a 2% bound — hits all modes alike instead of biasing
    # whichever block ran when the machine was busiest.
    def traced_round() -> None:
        trace.TRACER.enable()
        try:
            _round_trip(clip, qp, estimator)
        finally:
            trace.TRACER.disable()
            trace.TRACER.drain()

    bypassed_s = disabled_s = enabled_s = float("inf")
    for _ in range(max(1, rounds)):
        with instrumentation_bypassed():
            bypassed_s = min(
                bypassed_s, _time_once(lambda: _round_trip(clip, qp, estimator))
            )
        disabled_s = min(
            disabled_s, _time_once(lambda: _round_trip(clip, qp, estimator))
        )
        enabled_s = min(enabled_s, _time_once(traced_round))

    return ObsBenchResult(
        sequence=sequence,
        frames=len(clip),
        qp=qp,
        estimator=estimator,
        bitstream_bytes=len(bitstream_disabled),
        bypassed_ms=bypassed_s * 1000.0,
        disabled_ms=disabled_s * 1000.0,
        enabled_ms=enabled_s * 1000.0,
        trace_events=trace_events,
        identical=identical,
        machine_cpu_count=os.cpu_count() or 1,
    )
