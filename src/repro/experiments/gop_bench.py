"""GOP benchmark: per-GOP parallel encode speedup + random access.

``i_Period`` turns an encode into independent GOP units
(:mod:`repro.parallel.gop`), which is the encoder-side twin of the
frame-parallel symbol parse: the serial and parallel encoders must emit
byte-identical streams, and the only interesting number is wall-clock.
This benchmark pins the identity, measures the speedup, and exercises
the decoder's random access on the same stream:

* **encode identity** — ``encode_sequence_parallel(jobs=N)`` vs the
  serial ``Encoder``, byte-for-byte (the splice correctness gate);
* **encode timing** — serial vs ``jobs`` workers, best-of-``rounds``
  (on a single-core CI box the speedup is an honest ~1.0 and the
  regression gate knows not to gate it — the ``gop_`` prefix);
* **random access** — decoding from every I-frame via
  ``decode_bitstream(start_frame=k)`` must reproduce the full decode's
  tail bit-identically;
* **stream shape** — the intra/inter bit split and keyframe count, the
  rate cost ``i_Period`` buys random access with.

``runner gop-encode`` / ``runner seek-decode`` are the CLI faces;
``benchmarks/test_bench_gop.py`` records ``BENCH_gop.json``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.codec.decoder import FrameIndex, decode_bitstream
from repro.codec.encoder import Encoder
from repro.parallel.gop import encode_sequence_parallel
from repro.video.synthesis.sequences import make_sequence

# Re-exported for the runner's --json flag (same merge convention).
from repro.experiments.decode_bench import write_records  # noqa: F401
from repro.experiments.stream_bench import _best_of


@dataclass(frozen=True)
class GopBenchResult:
    """One GOP benchmark's outcome."""

    sequence: str
    frames: int
    qp: int
    i_period: int
    n_ref_frames: int
    jobs: int
    bitstream_bytes: int
    keyframes: int
    serial_encode_ms: float
    parallel_encode_ms: float
    #: Parallel splice == serial stream, byte for byte.
    encode_identical: bool
    #: Every I-frame seek reproduced the full decode's tail.
    seek_identical: bool
    #: Bits spent in I-frames / total bits — what random access costs.
    intra_bits_fraction: float
    machine_cpu_count: int

    @property
    def identical(self) -> bool:
        """The CI gate: splice identity and seek identity both held."""
        return self.encode_identical and self.seek_identical

    @property
    def parallel_speedup(self) -> float:
        return self.serial_encode_ms / self.parallel_encode_ms

    def records(self) -> dict[str, float]:
        """Payload for ``BENCH_gop.json`` (timings ``_ms``, gated ratio
        contains ``speedup``; the ``gop_`` prefix tells the regression
        gate to skip speedup gating on single-core machines)."""
        return {
            "gop_serial_encode_ms": self.serial_encode_ms,
            "gop_parallel_encode_ms": self.parallel_encode_ms,
            "gop_parallel_encode_speedup": self.parallel_speedup,
            "gop_intra_bits_fraction": self.intra_bits_fraction,
            "gop_frames": float(self.frames),
            "gop_keyframes": float(self.keyframes),
            "machine_cpu_count": float(self.machine_cpu_count),
        }

    def as_text(self) -> str:
        return (
            f"gop bench: {self.sequence}, {self.frames} frames, qp={self.qp}, "
            f"i_period={self.i_period}, n_ref={self.n_ref_frames}, "
            f"{self.bitstream_bytes} bytes (v2), {self.keyframes} keyframes\n"
            f"  parallel splice byte-identical: {self.encode_identical}; "
            f"every-keyframe seek bit-identical: {self.seek_identical}\n"
            f"  intra bits fraction: {self.intra_bits_fraction:.1%}\n"
            f"  encode: serial {self.serial_encode_ms:.1f} ms vs --jobs {self.jobs} "
            f"{self.parallel_encode_ms:.1f} ms -> {self.parallel_speedup:.2f}x "
            f"({self.machine_cpu_count} cpu)"
        )


def run_gop_bench(
    sequence: str = "foreman",
    frames: int = 12,
    qp: int = 16,
    estimator: str = "tss",
    seed: int = 0,
    rounds: int = 3,
    i_period: int = 3,
    n_ref_frames: int = 1,
    jobs: int = 2,
    clip=None,
) -> GopBenchResult:
    """Encode a synthetic clip with GOP structure serially and per-GOP
    in parallel; verify splice identity, verify seek-from-every-keyframe
    identity, then time both encode paths best-of-``rounds``."""
    if clip is None:
        clip = make_sequence(sequence, frames=frames, seed=seed)
    frames = len(clip)

    def encode_serial():
        return Encoder(
            estimator=estimator,
            qp=qp,
            keep_reconstruction=False,
            bitstream_version=2,
            i_period=i_period,
            n_ref_frames=n_ref_frames,
        ).encode(clip)

    def encode_parallel():
        return encode_sequence_parallel(
            clip,
            qp=qp,
            estimator=estimator,
            i_period=i_period,
            n_ref_frames=n_ref_frames,
            jobs=jobs,
        )

    serial = encode_serial()
    parallel = encode_parallel()
    encode_identical = parallel.bitstream == serial.bitstream

    full = decode_bitstream(serial.bitstream)
    index = FrameIndex.scan(serial.bitstream)
    keyframe_list = index.keyframes(serial.bitstream)
    seek_identical = True
    for kf in keyframe_list:
        tail = decode_bitstream(serial.bitstream, start_frame=kf)
        if not (len(tail) == len(full) - kf and all(a == b for a, b in zip(tail, full[kf:]))):
            seek_identical = False

    intra_bits = sum(r.bits for r in serial.frames if r.frame_type == "I")
    intra_bits_fraction = intra_bits / max(serial.total_bits, 1)

    serial_s = _best_of(encode_serial, rounds)
    parallel_s = _best_of(encode_parallel, rounds)

    return GopBenchResult(
        sequence=serial.name,
        frames=frames,
        qp=qp,
        i_period=i_period,
        n_ref_frames=n_ref_frames,
        jobs=jobs,
        bitstream_bytes=len(serial.bitstream),
        keyframes=len(keyframe_list),
        serial_encode_ms=serial_s * 1000.0,
        parallel_encode_ms=parallel_s * 1000.0,
        encode_identical=encode_identical,
        seek_identical=seek_identical,
        intra_bits_fraction=intra_bits_fraction,
        machine_cpu_count=os.cpu_count() or 1,
    )
