"""Streaming-codec benchmark: push decode vs whole-buffer decode.

The serving-shaped counterpart of :mod:`repro.experiments.decode_bench`:
one version-2 encode, then the same bytes decoded twice — once through
:func:`repro.codec.decoder.decode_bitstream` with the whole buffer in
hand, once pushed chunk by chunk through a
:class:`repro.streaming.DecodeSession` with frames drained as they
complete.  Identity is verified before anything is timed (streamed
frames vs whole-buffer frames vs the encoder's closed loop), and the
session's **peak buffered bytes** are recorded against the subsystem's
memory bound: two frames' worth of payload plus one reconstruction
window (3 raw frames' bytes total — the whole-buffer path, by contrast,
holds the entire stream plus every decoded frame).

The streaming *encoder* is verified alongside: a
:class:`repro.streaming.StreamEncoder` pulling the clip frame by frame
must emit the whole-sequence encoder's bytes exactly, in both wire
formats.

A third pass times the **pipelined** session
(``DecodeSession(pipeline=...)``, PR 6): symbol parse on a worker,
reconstruction on the main side, joined by a bounded queue.  Its
bit-identity is verified in thread *and* process mode every run; the
timed mode is selectable (thread by default — no spawn cost).  The
process pass also yields the transport ledger (``bytes_copied`` /
``handles_passed``): compressed payloads cross by value, parsed symbol
arrays return as shared-memory handles.

``runner stream-bench`` exposes this as a CLI mode;
``benchmarks/test_bench_stream.py`` records the numbers to
``BENCH_stream.json`` for CI's regression gate (the gated keys are the
stream-vs-whole throughput ratio, which must stay near 1.0 — streaming
adds scanning and bookkeeping, not compute — and the pipelined speedup,
gated only on multi-core machines; ``machine_cpu_count`` rides along so
the gate can tell).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

from repro.codec.decoder import FrameIndex, decode_bitstream
from repro.codec.encoder import encode_sequence
from repro.streaming import DecodeSession, StreamEncoder
from repro.video.synthesis.sequences import make_sequence
from repro.video.yuv_io import frame_size_bytes

# Re-exported for the runner's --json flag (same merge convention).
from repro.experiments.decode_bench import write_records  # noqa: F401


@dataclass(frozen=True)
class StreamBenchResult:
    """One streaming benchmark's outcome."""

    sequence: str
    frames: int
    qp: int
    estimator: str
    bitstream_bytes: int
    chunk_size: int
    whole_ms: float
    stream_ms: float
    peak_buffered_bytes: int
    buffer_bound_bytes: int
    #: Streamed frames == whole-buffer decode == encoder closed loop.
    stream_identical: bool
    #: StreamEncoder bytes == Encoder bytes, v1 and v2.
    encode_identical: bool
    #: Pipelined session (thread AND process mode) == serial push decode.
    pipeline_identical: bool
    #: The pipeline mode that was *timed* ("thread" or "process").
    pipeline_kind: str
    pipeline_ms: float
    pipeline_peak_buffered_bytes: int
    #: Transport ledger from the process-mode identity pass.
    bytes_copied: int
    handles_passed: int
    machine_cpu_count: int

    @property
    def identical(self) -> bool:
        """Every verified identity held (the CI gate)."""
        return self.stream_identical and self.encode_identical and self.pipeline_identical

    @property
    def pipeline_speedup(self) -> float:
        """Pipelined vs serial push decode (1.0 = no overlap win; on a
        single-core machine this is an honest <= 1.0ish measurement)."""
        return self.stream_ms / self.pipeline_ms

    @property
    def within_bound(self) -> bool:
        return self.peak_buffered_bytes < self.buffer_bound_bytes

    @property
    def speedup(self) -> float:
        """Stream-vs-whole throughput ratio (1.0 = no streaming tax)."""
        return self.whole_ms / self.stream_ms

    @property
    def stream_mbps(self) -> float:
        """Push-decode throughput in Mbit/s of bitstream."""
        return self.bitstream_bytes * 8 / (self.stream_ms / 1000.0) / 1e6

    def records(self) -> dict[str, float]:
        """Payload for ``BENCH_stream.json`` (timings ``_ms``, the
        gated ratio contains ``speedup``, byte counts are info)."""
        return {
            "stream_whole_decode_ms": self.whole_ms,
            "stream_push_decode_ms": self.stream_ms,
            "stream_vs_whole_speedup": self.speedup,
            "stream_decode_mbps": self.stream_mbps,
            "stream_peak_buffered_bytes": float(self.peak_buffered_bytes),
            "stream_buffer_bound_bytes": float(self.buffer_bound_bytes),
            "stream_pipeline_decode_ms": self.pipeline_ms,
            "stream_pipeline_speedup": self.pipeline_speedup,
            "stream_pipeline_peak_buffered_bytes": float(self.pipeline_peak_buffered_bytes),
            "stream_bytes_copied": float(self.bytes_copied),
            "stream_handles_passed": float(self.handles_passed),
            "machine_cpu_count": float(self.machine_cpu_count),
        }

    def as_text(self) -> str:
        return (
            f"stream bench: {self.sequence}, {self.frames} frames, qp={self.qp}, "
            f"{self.estimator}, {self.bitstream_bytes} bytes (v2), "
            f"{self.chunk_size}-byte chunks\n"
            f"  bit-identical (streamed == whole-buffer == encoder loop): "
            f"{self.stream_identical}\n"
            f"  stream-encode byte-identical (v1 and v2): {self.encode_identical}\n"
            f"  pipelined bit-identical (thread and process): {self.pipeline_identical}\n"
            f"  transport (process pipeline): {self.bytes_copied} B copied in, "
            f"{self.handles_passed} handles back\n"
            f"  peak buffered {self.peak_buffered_bytes} bytes "
            f"(bound {self.buffer_bound_bytes}: within={self.within_bound}; "
            f"whole buffer holds {self.bitstream_bytes})\n"
            f"  whole {self.whole_ms:.1f} ms vs push {self.stream_ms:.1f} ms "
            f"-> {self.speedup:.2f}x ({self.stream_mbps:.2f} Mbit/s); "
            f"pipelined ({self.pipeline_kind}) {self.pipeline_ms:.1f} ms "
            f"-> {self.pipeline_speedup:.2f}x vs push "
            f"({self.machine_cpu_count} cpu)"
        )


def _stream_decode_once(
    bitstream: bytes,
    chunk_size: int,
    max_buffered_frames: int = 2,
    pipeline: bool | str = False,
) -> tuple[list, DecodeSession]:
    """One full push-decode pass: feed fixed-size chunks, drain after
    every feed (the well-behaved consumer the backpressure contract
    assumes).  Returns the decoded frames and the session."""
    session = DecodeSession(max_buffered_frames=max_buffered_frames, pipeline=pipeline)
    out: list = []
    for start in range(0, len(bitstream), chunk_size):
        session.feed(bitstream[start : start + chunk_size])
        out.extend(session.frames())
    session.close()
    out.extend(session.frames())
    return out, session


def _best_of(fn, rounds: int) -> float:
    best = float("inf")
    for _ in range(max(1, rounds)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run_stream_bench(
    sequence: str = "foreman",
    frames: int = 30,
    qp: int = 16,
    estimator: str = "tss",
    seed: int = 0,
    rounds: int = 3,
    chunk_size: int = 1500,
    clip=None,
    pipeline: str = "thread",
) -> StreamBenchResult:
    """Encode ``frames`` of a synthetic clip as version 2, then time
    whole-buffer vs push vs pipelined push decode over the same bytes
    (best of ``rounds``), verifying every identity first — including
    the pipelined session in *both* worker modes.

    ``chunk_size`` defaults to an MTU-ish 1500 bytes — the shape a
    network ingest actually delivers.  ``pipeline`` picks the mode the
    pipelined timing uses (``"thread"`` by default; ``"process"`` adds
    one spawn per pass).  Pass a prebuilt ``Sequence`` via ``clip`` to
    skip the synthesis (the benchmark suite shares one render).
    """
    if clip is None:
        clip = make_sequence(sequence, frames=frames, seed=seed)
    encode = encode_sequence(
        clip, qp=qp, estimator=estimator, keep_reconstruction=True, bitstream_version=2
    )
    sequence, qp, estimator = encode.name, encode.qp, encode.estimator_name
    frames = len(encode.reconstruction)
    bitstream = encode.bitstream

    # -- identity: streamed frames == whole-buffer == closed loop ------
    whole = decode_bitstream(bitstream)
    streamed, session = _stream_decode_once(bitstream, chunk_size)
    stream_identical = (
        len(streamed) == len(whole) == len(encode.reconstruction)
        and all(a == b for a, b in zip(streamed, whole))
        and all(a == b for a, b in zip(streamed, encode.reconstruction))
    )
    peak = session.stats().peak_buffered_bytes

    # -- identity: pipelined session == serial push, both modes --------
    pipeline_identical = True
    bytes_copied = handles_passed = 0
    pipeline_peak = 0
    for kind in ("thread", "process"):
        piped, piped_session = _stream_decode_once(bitstream, chunk_size, pipeline=kind)
        stats = piped_session.stats()
        if not (len(piped) == len(streamed) and all(a == b for a, b in zip(piped, streamed))):
            pipeline_identical = False
        if kind == "process":
            bytes_copied = stats.bytes_copied
            handles_passed = stats.handles_passed
        if kind == pipeline:
            pipeline_peak = stats.peak_buffered_bytes

    # -- identity: streamed encode bytes == whole-sequence bytes -------
    encode_identical = True
    for version in (1, 2):
        reference = (
            bitstream
            if version == 2
            else encode_sequence(clip, qp=qp, estimator=estimator, bitstream_version=1).bitstream
        )
        streaming_encoder = StreamEncoder(
            estimator=estimator, qp=qp, bitstream_version=version
        )
        if b"".join(streaming_encoder.encode_iter(iter(clip))) != reference:
            encode_identical = False

    # -- the memory bound the subsystem promises -----------------------
    # Two frames' worth of payload plus one reconstruction window.  "A
    # frame's worth of payload" is a raw frame's bytes (compressed
    # payloads sit far below that; a pathological stream that expands
    # past raw size widens its own budget rather than faking a pass).
    raw_frame = frame_size_bytes(clip.geometry)
    max_payload = max(e - s for s, e in FrameIndex.scan(bitstream).ranges)
    bound = 2 * max(raw_frame, max_payload) + raw_frame

    whole_s = _best_of(lambda: decode_bitstream(bitstream), rounds)
    stream_s = _best_of(lambda: _stream_decode_once(bitstream, chunk_size), rounds)
    pipeline_s = _best_of(
        lambda: _stream_decode_once(bitstream, chunk_size, pipeline=pipeline), rounds
    )
    return StreamBenchResult(
        sequence=sequence,
        frames=frames,
        qp=qp,
        estimator=estimator,
        bitstream_bytes=len(bitstream),
        chunk_size=chunk_size,
        whole_ms=whole_s * 1000.0,
        stream_ms=stream_s * 1000.0,
        peak_buffered_bytes=peak,
        buffer_bound_bytes=bound,
        stream_identical=stream_identical,
        encode_identical=encode_identical,
        pipeline_identical=pipeline_identical,
        pipeline_kind=pipeline,
        pipeline_ms=pipeline_s * 1000.0,
        pipeline_peak_buffered_bytes=pipeline_peak,
        bytes_copied=bytes_copied,
        handles_passed=handles_passed,
        machine_cpu_count=os.cpu_count() or 1,
    )
