"""Streaming-codec benchmark: push decode vs whole-buffer decode.

The serving-shaped counterpart of :mod:`repro.experiments.decode_bench`:
one version-2 encode, then the same bytes decoded twice — once through
:func:`repro.codec.decoder.decode_bitstream` with the whole buffer in
hand, once pushed chunk by chunk through a
:class:`repro.streaming.DecodeSession` with frames drained as they
complete.  Identity is verified before anything is timed (streamed
frames vs whole-buffer frames vs the encoder's closed loop), and the
session's **peak buffered bytes** are recorded against the subsystem's
memory bound: two frames' worth of payload plus one reconstruction
window (3 raw frames' bytes total — the whole-buffer path, by contrast,
holds the entire stream plus every decoded frame).

The streaming *encoder* is verified alongside: a
:class:`repro.streaming.StreamEncoder` pulling the clip frame by frame
must emit the whole-sequence encoder's bytes exactly, in both wire
formats.

``runner stream-bench`` exposes this as a CLI mode;
``benchmarks/test_bench_stream.py`` records the numbers to
``BENCH_stream.json`` for CI's regression gate (the gated key is the
stream-vs-whole throughput ratio, which must stay near 1.0 — streaming
adds scanning and bookkeeping, not compute).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.codec.decoder import FrameIndex, decode_bitstream
from repro.codec.encoder import encode_sequence
from repro.streaming import DecodeSession, StreamEncoder
from repro.video.synthesis.sequences import make_sequence
from repro.video.yuv_io import frame_size_bytes

# Re-exported for the runner's --json flag (same merge convention).
from repro.experiments.decode_bench import write_records  # noqa: F401


@dataclass(frozen=True)
class StreamBenchResult:
    """One streaming benchmark's outcome."""

    sequence: str
    frames: int
    qp: int
    estimator: str
    bitstream_bytes: int
    chunk_size: int
    whole_ms: float
    stream_ms: float
    peak_buffered_bytes: int
    buffer_bound_bytes: int
    #: Streamed frames == whole-buffer decode == encoder closed loop.
    stream_identical: bool
    #: StreamEncoder bytes == Encoder bytes, v1 and v2.
    encode_identical: bool

    @property
    def identical(self) -> bool:
        """Every verified identity held (the CI gate)."""
        return self.stream_identical and self.encode_identical

    @property
    def within_bound(self) -> bool:
        return self.peak_buffered_bytes < self.buffer_bound_bytes

    @property
    def speedup(self) -> float:
        """Stream-vs-whole throughput ratio (1.0 = no streaming tax)."""
        return self.whole_ms / self.stream_ms

    @property
    def stream_mbps(self) -> float:
        """Push-decode throughput in Mbit/s of bitstream."""
        return self.bitstream_bytes * 8 / (self.stream_ms / 1000.0) / 1e6

    def records(self) -> dict[str, float]:
        """Payload for ``BENCH_stream.json`` (timings ``_ms``, the
        gated ratio contains ``speedup``, byte counts are info)."""
        return {
            "stream_whole_decode_ms": self.whole_ms,
            "stream_push_decode_ms": self.stream_ms,
            "stream_vs_whole_speedup": self.speedup,
            "stream_decode_mbps": self.stream_mbps,
            "stream_peak_buffered_bytes": float(self.peak_buffered_bytes),
            "stream_buffer_bound_bytes": float(self.buffer_bound_bytes),
        }

    def as_text(self) -> str:
        return (
            f"stream bench: {self.sequence}, {self.frames} frames, qp={self.qp}, "
            f"{self.estimator}, {self.bitstream_bytes} bytes (v2), "
            f"{self.chunk_size}-byte chunks\n"
            f"  bit-identical (streamed == whole-buffer == encoder loop): "
            f"{self.stream_identical}\n"
            f"  stream-encode byte-identical (v1 and v2): {self.encode_identical}\n"
            f"  peak buffered {self.peak_buffered_bytes} bytes "
            f"(bound {self.buffer_bound_bytes}: within={self.within_bound}; "
            f"whole buffer holds {self.bitstream_bytes})\n"
            f"  whole {self.whole_ms:.1f} ms vs push {self.stream_ms:.1f} ms "
            f"-> {self.speedup:.2f}x ({self.stream_mbps:.2f} Mbit/s)"
        )


def _stream_decode_once(
    bitstream: bytes, chunk_size: int, max_buffered_frames: int = 2
) -> tuple[list, DecodeSession]:
    """One full push-decode pass: feed fixed-size chunks, drain after
    every feed (the well-behaved consumer the backpressure contract
    assumes).  Returns the decoded frames and the session."""
    session = DecodeSession(max_buffered_frames=max_buffered_frames)
    out: list = []
    for start in range(0, len(bitstream), chunk_size):
        session.feed(bitstream[start : start + chunk_size])
        out.extend(session.frames())
    session.close()
    out.extend(session.frames())
    return out, session


def _best_of(fn, rounds: int) -> float:
    best = float("inf")
    for _ in range(max(1, rounds)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run_stream_bench(
    sequence: str = "foreman",
    frames: int = 30,
    qp: int = 16,
    estimator: str = "tss",
    seed: int = 0,
    rounds: int = 3,
    chunk_size: int = 1500,
    clip=None,
) -> StreamBenchResult:
    """Encode ``frames`` of a synthetic clip as version 2, then time
    whole-buffer vs push decode over the same bytes (best of
    ``rounds``), verifying every identity first.

    ``chunk_size`` defaults to an MTU-ish 1500 bytes — the shape a
    network ingest actually delivers.  Pass a prebuilt ``Sequence`` via
    ``clip`` to skip the synthesis (the benchmark suite shares one
    render).
    """
    if clip is None:
        clip = make_sequence(sequence, frames=frames, seed=seed)
    encode = encode_sequence(
        clip, qp=qp, estimator=estimator, keep_reconstruction=True, bitstream_version=2
    )
    sequence, qp, estimator = encode.name, encode.qp, encode.estimator_name
    frames = len(encode.reconstruction)
    bitstream = encode.bitstream

    # -- identity: streamed frames == whole-buffer == closed loop ------
    whole = decode_bitstream(bitstream)
    streamed, session = _stream_decode_once(bitstream, chunk_size)
    stream_identical = (
        len(streamed) == len(whole) == len(encode.reconstruction)
        and all(a == b for a, b in zip(streamed, whole))
        and all(a == b for a, b in zip(streamed, encode.reconstruction))
    )
    peak = session.stats().peak_buffered_bytes

    # -- identity: streamed encode bytes == whole-sequence bytes -------
    encode_identical = True
    for version in (1, 2):
        reference = (
            bitstream
            if version == 2
            else encode_sequence(clip, qp=qp, estimator=estimator, bitstream_version=1).bitstream
        )
        streaming_encoder = StreamEncoder(
            estimator=estimator, qp=qp, bitstream_version=version
        )
        if b"".join(streaming_encoder.encode_iter(iter(clip))) != reference:
            encode_identical = False

    # -- the memory bound the subsystem promises -----------------------
    # Two frames' worth of payload plus one reconstruction window.  "A
    # frame's worth of payload" is a raw frame's bytes (compressed
    # payloads sit far below that; a pathological stream that expands
    # past raw size widens its own budget rather than faking a pass).
    raw_frame = frame_size_bytes(clip.geometry)
    max_payload = max(e - s for s, e in FrameIndex.scan(bitstream).ranges)
    bound = 2 * max(raw_frame, max_payload) + raw_frame

    whole_s = _best_of(lambda: decode_bitstream(bitstream), rounds)
    stream_s = _best_of(lambda: _stream_decode_once(bitstream, chunk_size), rounds)
    return StreamBenchResult(
        sequence=sequence,
        frames=frames,
        qp=qp,
        estimator=estimator,
        bitstream_bytes=len(bitstream),
        chunk_size=chunk_size,
        whole_ms=whole_s * 1000.0,
        stream_ms=stream_s * 1000.0,
        peak_buffered_bytes=peak,
        buffer_bound_bytes=bound,
        stream_identical=stream_identical,
        encode_identical=encode_identical,
    )
