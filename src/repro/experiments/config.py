"""Shared experiment configuration.

Defaults mirror the paper's setup — QCIF, p = 15, half-pel, Qp sweep
{30, 28, …, 16}, the four test sequences at 30 and 10 fps, α=1000,
β=8, γ=¼ — with knobs (frame count, seed) for fast CI runs versus full
benchmark runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.parameters import ACBMParameters
from repro.video.frame import QCIF, FrameGeometry

#: The paper's Qp rows in Table 1 (descending, as printed).
PAPER_QPS: tuple[int, ...] = (30, 28, 26, 24, 22, 20, 18, 16)

#: The paper's evaluation sequences.
PAPER_SEQUENCES: tuple[str, ...] = ("carphone", "foreman", "miss_america", "table")

#: Frame rates evaluated in Table 1 and Figs. 5-6 (fps → temporal
#: subsampling factor from the 30 fps source).
PAPER_FPS: dict[int, int] = {30: 1, 10: 3}


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs common to the RD and complexity experiments."""

    sequences: tuple[str, ...] = PAPER_SEQUENCES
    qps: tuple[int, ...] = PAPER_QPS
    fps_list: tuple[int, ...] = (30, 10)
    #: Frames rendered at the 30 fps source rate.  21 gives 7 frames at
    #: 10 fps — enough for the temporal effects while keeping sweep
    #: runtimes sane; raise for publication-grade curves.
    frames: int = 21
    seed: int = 0
    geometry: FrameGeometry = QCIF
    p: int = 15
    acbm_params: ACBMParameters = field(default_factory=ACBMParameters.paper_defaults)

    def __post_init__(self) -> None:
        if self.frames < 4:
            raise ValueError(f"need at least 4 source frames, got {self.frames}")
        unknown_fps = set(self.fps_list) - set(PAPER_FPS)
        if unknown_fps:
            raise ValueError(f"unsupported fps values {sorted(unknown_fps)}; known: {sorted(PAPER_FPS)}")
        if not self.qps:
            raise ValueError("qps must be non-empty")

    def subsample_factor(self, fps: int) -> int:
        return PAPER_FPS[fps]

    @staticmethod
    def quick() -> "ExperimentConfig":
        """Reduced configuration for unit/integration tests."""
        return ExperimentConfig(
            sequences=("miss_america", "foreman"),
            qps=(30, 22, 16),
            fps_list=(30,),
            frames=7,
        )
