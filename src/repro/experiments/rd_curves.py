"""Rate-distortion sweeps — Figures 5 (30 fps) and 6 (10 fps).

For every (sequence, fps, estimator, Qp) cell, encode the clip with the
H.263-style encoder and record rate (kbit/s), luma PSNR (dB) and the
search-cost statistics.  The per-cell records feed three consumers:

* RD curves per sequence/fps (the figures),
* Table 1 (ACBM average positions/MB, from the same runs — no separate
  sweep needed),
* the paper's verbal claims, expressed as the comparison helpers on
  :class:`RDSweepResult`.

The sweep itself is a flat list of independent
:class:`repro.parallel.EncodeJob` specs executed through
:func:`repro.parallel.run_jobs` — serially in-process for ``jobs=1``
(the default, identical to the historical loop) or sharded across
worker processes for ``jobs>1``.  Cells always merge back in the
canonical (sequence, fps, estimator, Qp) job order, so every consumer
of the result — and the printed figures — is byte-identical for any
worker count.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.rd import RDCurve, RDPoint
from repro.analysis.reporting import format_rd_series
from repro.core.acbm import ACBMEstimator
from repro.experiments.config import ExperimentConfig
from repro.me.estimator import MotionEstimator
from repro.me.full_search import FullSearchEstimator
from repro.me.predictive import PredictiveEstimator
from repro.parallel import SweepJob, borrowed_renders, run_jobs
from repro.video.sequence import Sequence

#: The figures' three curves.
PAPER_ESTIMATORS: tuple[str, ...] = ("acbm", "fsbm", "pbm")


@dataclass(frozen=True)
class SweepCell:
    """One encode's summary."""

    sequence: str
    fps: int
    estimator: str
    qp: int
    rate_kbps: float
    psnr_y: float
    avg_positions: float
    full_search_fraction: float
    skipped_mbs: int
    mv_bits: int
    coefficient_bits: int


@dataclass
class RDSweepResult:
    """All cells of one sweep plus curve/claim accessors."""

    config: ExperimentConfig
    cells: list[SweepCell] = field(default_factory=list)

    def curve(self, sequence: str, fps: int, estimator: str) -> RDCurve:
        points = [
            RDPoint(qp=c.qp, rate_kbps=c.rate_kbps, psnr_db=c.psnr_y)
            for c in self.cells
            if c.sequence == sequence and c.fps == fps and c.estimator == estimator
        ]
        if not points:
            raise ValueError(f"no cells for ({sequence}, {fps} fps, {estimator})")
        return RDCurve(f"{estimator}/{sequence}@{fps}", points)

    def figure(self, fps: int) -> dict[str, dict[str, RDCurve]]:
        """``sequence → estimator → RDCurve`` for one frame rate: the
        data behind Fig. 5 (fps=30) or Fig. 6 (fps=10)."""
        sequences = sorted({c.sequence for c in self.cells if c.fps == fps})
        estimators = sorted({c.estimator for c in self.cells if c.fps == fps})
        if not sequences:
            raise ValueError(f"no cells at {fps} fps")
        return {
            seq: {est: self.curve(seq, fps, est) for est in estimators}
            for seq in sequences
        }

    def psnr_gain(self, sequence: str, fps: int, estimator_a: str, estimator_b: str) -> float:
        """Average PSNR advantage of a over b at matched rate (dB)."""
        return self.curve(sequence, fps, estimator_a).average_psnr_gain_over(
            self.curve(sequence, fps, estimator_b)
        )

    def acbm_positions(self, sequence: str, fps: int, qp: int) -> float:
        """Table 1 cell: ACBM average positions/MB."""
        for c in self.cells:
            if (
                c.sequence == sequence
                and c.fps == fps
                and c.qp == qp
                and c.estimator == "acbm"
            ):
                return c.avg_positions
        raise ValueError(f"no ACBM cell for ({sequence}, {fps} fps, qp={qp})")

    def as_text(self, fps: int) -> str:
        blocks = []
        for seq, curves in self.figure(fps).items():
            ordered = [curves[e] for e in PAPER_ESTIMATORS if e in curves]
            ordered += [c for e, c in sorted(curves.items()) if e not in PAPER_ESTIMATORS]
            blocks.append(
                format_rd_series(ordered, title=f"== {seq} sequence, QCIF@{fps} fps ==")
            )
        return "\n\n".join(blocks)


def build_estimator(name: str, config: ExperimentConfig) -> MotionEstimator:
    """The paper's three contenders, configured per the experiment."""
    if name == "acbm":
        return ACBMEstimator(p=config.p, params=config.acbm_params)
    if name == "fsbm":
        return FullSearchEstimator(p=config.p)
    if name == "pbm":
        return PredictiveEstimator(p=config.p)
    from repro.me.estimator import create_estimator

    return create_estimator(name, p=config.p)


def sweep_jobs(
    config: ExperimentConfig, estimators: tuple[str, ...] = PAPER_ESTIMATORS
):
    """The sweep's per-cell job list in canonical merge order."""
    return SweepJob(config=config, estimators=tuple(estimators)).expand()


def run_rd_sweep(
    config: ExperimentConfig | None = None,
    estimators: tuple[str, ...] = PAPER_ESTIMATORS,
    sequences_cache: dict[str, Sequence] | None = None,
    progress=None,
    jobs: int = 1,
    use_shm: bool | str = "auto",
) -> RDSweepResult:
    """Run the full sweep.

    Parameters
    ----------
    config:
        Experiment knobs; paper defaults when omitted.
    estimators:
        Registry names to compare (default: the figures' three).
    sequences_cache:
        Optional pre-rendered 30 fps sources keyed by name (the Table 1
        bench shares renders with the figure benches through this).
        Only short-circuits rendering in the calling process; workers
        re-render (memoized per worker).
    progress:
        Optional callable ``(message: str) -> None`` for live progress.
    jobs:
        Worker processes; 1 (the default) runs in-process.  The result
        is byte-identical for any value — cells merge in job order and
        every job's inputs are derived from explicit seeds.
    use_shm:
        Transport for parallel runs, forwarded to
        :func:`~repro.parallel.pool.run_jobs`.  The default ``"auto"``
        ships each clip's source render to workers as shared-memory
        handles (rendered once in this process, including from
        ``sequences_cache`` via the borrowed memo) whenever workers
        actually spawn.  Cells are byte-identical under every mode.
    """
    config = config or ExperimentConfig()
    with borrowed_renders(sequences_cache or {}, config):
        cells = run_jobs(
            sweep_jobs(config, estimators),
            workers=jobs,
            base_seed=config.seed,
            progress=progress,
            use_shm=use_shm,
        )
    return RDSweepResult(config=config, cells=list(cells))
