"""repro — reproduction of the ACBM block-matching motion estimator.

This package reproduces "A High Quality/Low Computational Cost Technique
for Block Matching Motion Estimation" (S. Lopez, G.M. Callico, J.F. Lopez,
R. Sarmiento — DATE 2005).

Layout
------
``repro.core``
    The paper's contribution: the Adaptive Cost Block Matching (ACBM)
    estimator, its parameters and the per-block criticality classifier.
``repro.me``
    Block-matching substrate: metrics (SAD, Intra_SAD, SAD_deviation),
    full search, predictive search, classic fast-search baselines,
    half-pel refinement and search-cost accounting.
``repro.video``
    Frames, sequences, raw YUV I/O and deterministic synthetic sequence
    generators standing in for the standard QCIF test clips.
``repro.codec``
    H.263-style hybrid encoder used by the paper's evaluation: 8x8 DCT,
    H.263 quantizer, zig-zag + TCOEF VLC, MV prediction/coding, half-pel
    motion compensation and a closed reconstruction loop.
``repro.analysis``
    PSNR, rate-distortion curves, motion-field statistics, reporting.
``repro.experiments``
    One harness per paper table/figure (Fig. 4, Figs. 5-6, Table 1).

Quickstart
----------
>>> from repro import make_sequence, encode_sequence
>>> seq = make_sequence("miss_america", frames=10)
>>> result = encode_sequence(seq, qp=16, estimator="acbm")
>>> result.mean_psnr_y > 30.0
True
"""

from repro.core.acbm import ACBMEstimator
from repro.core.parameters import ACBMParameters
from repro.me.estimator import available_estimators, create_estimator
from repro.me.full_search import FullSearchEstimator
from repro.me.predictive import PredictiveEstimator
from repro.me.types import MotionField, MotionVector
from repro.video.sequence import Sequence
from repro.video.synthesis.sequences import available_sequences, make_sequence
from repro.codec.encoder import EncodeResult, Encoder, encode_sequence

__version__ = "1.0.0"

__all__ = [
    "ACBMEstimator",
    "ACBMParameters",
    "EncodeResult",
    "Encoder",
    "FullSearchEstimator",
    "MotionField",
    "MotionVector",
    "PredictiveEstimator",
    "Sequence",
    "available_estimators",
    "available_sequences",
    "create_estimator",
    "encode_sequence",
    "make_sequence",
    "__version__",
]
