"""ACBM tuning parameters (α, β, γ) and the Qp-dependent threshold.

The paper's Section 3.2 introduces three fixed parameters:

* ``α`` (alpha) — base acceptance threshold in SAD units.
* ``β`` (beta)  — weight of the quadratic quantizer term; the combined
  threshold is ``α + β·Qp²``.  Coarser quantization masks larger
  matching errors, so the acceptance region grows with Qp.
* ``γ`` (gamma) — relative-SAD acceptance for textured blocks:
  accept the predictive vector when ``SAD_PBM < γ·Intra_SAD``.

The paper's tuned operating point (quality ≈ FSBM) is α=1000, β=8,
γ=¼.  The dataclass also exposes the two extremes the paper mentions:
γ→∞/huge thresholds degenerate to pure PBM, α=β=γ=0 to pure FSBM.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ACBMParameters:
    """Immutable ACBM configuration.

    >>> ACBMParameters.paper_defaults().threshold(qp=20)
    4200.0
    """

    alpha: float = 1000.0
    beta: float = 8.0
    gamma: float = 0.25

    def __post_init__(self) -> None:
        if self.alpha < 0:
            raise ValueError(f"alpha must be >= 0, got {self.alpha}")
        if self.beta < 0:
            raise ValueError(f"beta must be >= 0, got {self.beta}")
        if self.gamma < 0:
            raise ValueError(f"gamma must be >= 0, got {self.gamma}")

    @staticmethod
    def paper_defaults() -> "ACBMParameters":
        """α=1000, β=8, γ=¼ — the values Section 4 fixes after its
        exhaustive sweep, chosen to match FSBM quality."""
        return ACBMParameters(alpha=1000.0, beta=8.0, gamma=0.25)

    @staticmethod
    def always_full_search() -> "ACBMParameters":
        """Degenerate configuration that classifies every block critical
        (ACBM ≡ PBM cost + FSBM result).  Used by tests and ablations."""
        return ACBMParameters(alpha=0.0, beta=0.0, gamma=0.0)

    @staticmethod
    def never_full_search() -> "ACBMParameters":
        """Degenerate configuration that always accepts the predictive
        vector (ACBM ≡ PBM plus the Intra_SAD overhead)."""
        return ACBMParameters(alpha=float("inf"), beta=0.0, gamma=0.0)

    def threshold(self, qp: int) -> float:
        """The acceptance threshold ``α + β·Qp²`` for condition 1."""
        if not 1 <= qp <= 31:
            raise ValueError(f"H.263 Qp must be in 1..31, got {qp}")
        return self.alpha + self.beta * float(qp) ** 2

    def with_(self, **changes) -> "ACBMParameters":
        """Functional update helper for parameter sweeps.

        >>> ACBMParameters.paper_defaults().with_(gamma=0.5).gamma
        0.5
        """
        values = {"alpha": self.alpha, "beta": self.beta, "gamma": self.gamma}
        unknown = set(changes) - set(values)
        if unknown:
            raise TypeError(f"unknown ACBM parameters: {sorted(unknown)}")
        values.update(changes)
        return ACBMParameters(**values)
