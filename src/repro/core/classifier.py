"""Per-block criticality classification — the heart of ACBM.

Section 3.1's characterization (our Fig. 4 rig regenerates it) showed:

* high-texture blocks (large Intra_SAD) usually carry *true* motion
  vectors and exhibit large SAD_deviation — skipping full search there
  is dangerous only if the predictive SAD is far from minimal;
* low-texture blocks gain almost nothing from full search but pay for
  it in bits (incoherent vectors) and computation.

:func:`classify_block` encodes the resulting two-condition rule.
"""

from __future__ import annotations

from enum import Enum

from repro.core.parameters import ACBMParameters


class BlockDecision(str, Enum):
    """Outcome of the ACBM acceptance test for one block.

    The string values double as stable keys in
    :attr:`repro.me.stats.SearchStats.decisions`.
    """

    #: Condition 1 fired: combined activity + prediction error below the
    #: Qp-scaled threshold; the predictive vector is accepted.
    LOW_COST = "low_cost"
    #: Condition 2 fired: textured block but the predictive SAD is small
    #: relative to Intra_SAD; the predictive vector is accepted.
    GOOD_PREDICTION = "good_prediction"
    #: Neither condition holds; the block is critical and full search
    #: must run to protect reconstruction quality.
    CRITICAL = "critical"

    @property
    def accepts_pbm(self) -> bool:
        return self is not BlockDecision.CRITICAL


def classify_block(
    intra_sad: float,
    sad_pbm: int,
    qp: int,
    params: ACBMParameters,
) -> BlockDecision:
    """Apply the paper's two acceptance conditions in order.

    Parameters
    ----------
    intra_sad:
        Activity of the current block, Σ|p − µ|.
    sad_pbm:
        SAD of the vector found by the predictive search.
    qp:
        Quantizer step of the current frame (1..31).
    params:
        α, β, γ configuration.

    >>> params = ACBMParameters.paper_defaults()
    >>> classify_block(500.0, 400, 10, params)
    <BlockDecision.LOW_COST: 'low_cost'>
    >>> classify_block(9000.0, 800, 10, params)
    <BlockDecision.GOOD_PREDICTION: 'good_prediction'>
    >>> classify_block(9000.0, 5000, 10, params)
    <BlockDecision.CRITICAL: 'critical'>
    """
    if intra_sad < 0:
        raise ValueError(f"Intra_SAD must be >= 0, got {intra_sad}")
    if sad_pbm < 0:
        raise ValueError(f"SAD_PBM must be >= 0, got {sad_pbm}")
    if intra_sad + sad_pbm < params.threshold(qp):
        return BlockDecision.LOW_COST
    if sad_pbm < params.gamma * intra_sad:
        return BlockDecision.GOOD_PREDICTION
    return BlockDecision.CRITICAL
