"""The paper's contribution: Adaptive Cost Block Matching (ACBM).

ACBM runs the cheap predictive search on every macroblock and falls
back to exhaustive full search only on *critical* blocks — those where
neither of two acceptance conditions holds (Section 3.2):

1. ``Intra_SAD + SAD_PBM < α + β·Qp²`` — the block is smooth and/or the
   predictive match is already good, so full search could only buy a
   negligible distortion improvement at a large rate/compute price.
2. ``SAD_PBM < γ·Intra_SAD`` — the block is textured, but the
   predictive SAD is small *relative to the block's own activity*,
   i.e. near the attainable minimum.

Paper defaults: α=1000, β=8, γ=¼ (tuned to match FSBM quality).
"""

from repro.core.acbm import ACBMEstimator
from repro.core.classifier import BlockDecision, classify_block
from repro.core.parameters import ACBMParameters

__all__ = ["ACBMEstimator", "ACBMParameters", "BlockDecision", "classify_block"]
