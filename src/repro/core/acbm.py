"""The Adaptive Cost Block Matching estimator (Section 3.2).

Per macroblock:

1. Compute ``Intra_SAD`` of the reference (current-frame) block.
2. Run the predictive search (PBM, [9]) → vector + ``SAD_PBM``.
3. Classify with the two acceptance conditions
   (:func:`repro.core.classifier.classify_block`).
4. If critical, run the full search; keep whichever vector wins the
   arbitration (plain SAD by default; optionally the paper's Section
   2.1 Lagrangian ``J = SAD + λ(Qp)·R(mvd)``, which slightly favours
   the predictive vector's cheaper differential coding — the mechanism
   behind ACBM's "slightly better rate-distortion than FSBM").

Cost accounting follows the paper: the positions charged to a block are
the predictive search's evaluations plus — only on critical blocks —
the full search's.  The Intra_SAD computation itself touches only the
current block and is not a candidate position.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codec.mv_coding import mvd_bits, predict_mv
from repro.core.classifier import BlockDecision, classify_block
from repro.core.parameters import ACBMParameters
from repro.me.cost import lagrange_lambda
from repro.me.estimator import BlockContext, MotionEstimator, register_estimator
from repro.me.full_search import full_search_sads, select_minimum
from repro.me.metrics import intra_sad
from repro.me.predictive import PredictiveEstimator
from repro.me.subpel import refine_half_pel
from repro.me.types import BlockResult, MotionVector


@dataclass(frozen=True)
class ACBMBlockResult(BlockResult):
    """BlockResult enriched with the classifier verdict."""

    decision: str = BlockDecision.CRITICAL.value
    intra_sad: float = 0.0
    sad_pbm: int = 0


@register_estimator("acbm")
class ACBMEstimator(MotionEstimator):
    """Adaptive Cost Block Matching — the paper's proposed algorithm.

    Parameters
    ----------
    p, block_size, half_pel:
        As in :class:`repro.me.estimator.MotionEstimator`; paper values
        are p=15, 16x16 blocks, half-pel on.
    params:
        α/β/γ configuration; defaults to the paper's tuned values.
    refine_steps:
        Bound on the predictive stage's integer refinement descent.
    lagrangian:
        When True, critical blocks pick between the predictive and the
        full-search vector by ``J = SAD + λ(Qp)·R(mvd)`` (differential
        MV bits against the H.263 median predictor) instead of raw SAD.
        Off by default — the paper's base algorithm compares SADs.

    >>> est = ACBMEstimator()
    >>> (est.p, est.params.alpha, est.params.beta, est.params.gamma)
    (15, 1000.0, 8.0, 0.25)
    """

    def __init__(
        self,
        p: int = 15,
        block_size: int = 16,
        half_pel: bool = True,
        params: ACBMParameters | None = None,
        refine_steps: int = 2,
        lagrangian: bool = False,
        use_engine: bool = True,
    ) -> None:
        super().__init__(p=p, block_size=block_size, half_pel=half_pel, use_engine=use_engine)
        self.params = params if params is not None else ACBMParameters.paper_defaults()
        self.lagrangian = lagrangian
        # The embedded predictive stage; half-pel kept on so SAD_PBM is
        # the SAD of the vector PBM would actually deliver.
        self._pbm = PredictiveEstimator(
            p=p, block_size=block_size, half_pel=half_pel, refine_steps=refine_steps
        )

    def _vector_cost(self, sad: int, mv: MotionVector, ctx: BlockContext) -> float:
        """Arbitration metric between candidate vectors on a critical
        block: raw SAD, or the Lagrangian J when enabled."""
        if not self.lagrangian:
            return float(sad)
        predictor = predict_mv(ctx.field, ctx.mb_row, ctx.mb_col)
        return float(sad) + lagrange_lambda(ctx.qp) * mvd_bits(mv, predictor)

    def search_block(self, ctx: BlockContext) -> BlockResult:
        activity = intra_sad(ctx.block)
        pbm_result = self._pbm.search_block(ctx)
        decision = classify_block(activity, pbm_result.sad, ctx.qp, self.params)
        mv: MotionVector = pbm_result.mv
        best_sad = pbm_result.sad
        positions = pbm_result.positions
        used_full_search = False
        if not decision.accepts_pbm:
            fs_sads, window = full_search_sads(
                ctx.current, ctx.reference, ctx.block_y, ctx.block_x, self.block_size, self.p
            )
            fs_mv, fs_sad = select_minimum(fs_sads, window)
            positions += window.num_positions
            used_full_search = True
            if self.half_pel:
                fs_mv, fs_sad, extra = refine_half_pel(
                    ctx.block, ctx.matcher_reference, ctx.block_y, ctx.block_x, fs_mv, fs_sad, window
                )
                positions += extra
            if self._vector_cost(fs_sad, fs_mv, ctx) < self._vector_cost(best_sad, mv, ctx):
                mv, best_sad = fs_mv, fs_sad
        return ACBMBlockResult(
            mv=mv,
            sad=best_sad,
            positions=positions,
            used_full_search=used_full_search,
            decision=decision.value,
            intra_sad=activity,
            sad_pbm=pbm_result.sad,
        )
