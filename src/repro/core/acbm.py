"""The Adaptive Cost Block Matching estimator (Section 3.2).

Per macroblock:

1. Compute ``Intra_SAD`` of the reference (current-frame) block.
2. Run the predictive search (PBM, [9]) → vector + ``SAD_PBM``.
3. Classify with the two acceptance conditions
   (:func:`repro.core.classifier.classify_block`).
4. If critical, run the full search — per-block SAD maps while the
   frame's critical count is small, one lazily built whole-frame
   surface (:func:`repro.me.engine.frame_sad_surfaces`, shared through
   the frame driver's cache) once it isn't — and keep whichever vector
   wins the arbitration (plain SAD by default; optionally the paper's Section
   2.1 Lagrangian ``J = SAD + λ(Qp)·R(mvd)``, which slightly favours
   the predictive vector's cheaper differential coding — the mechanism
   behind ACBM's "slightly better rate-distortion than FSBM").

Cost accounting follows the paper: the positions charged to a block are
the predictive search's evaluations plus — only on critical blocks —
the full search's.  The Intra_SAD computation itself touches only the
current block and is not a candidate position.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.codec.mv_coding import mvd_bits, predict_mv
from repro.core.classifier import BlockDecision, classify_block
from repro.core.parameters import ACBMParameters
from repro.me.cost import lagrange_lambda
from repro.me.engine.kernels import frame_sad_surfaces, supports_vectorized_search
from repro.me.estimator import BlockContext, MotionEstimator, register_estimator
from repro.me.full_search import full_search_sads, select_minimum
from repro.me.metrics import intra_sad
from repro.me.predictive import PredictiveEstimator
from repro.me.subpel import refine_half_pel
from repro.me.types import BlockResult, MotionVector


@dataclass(frozen=True)
class ACBMBlockResult(BlockResult):
    """BlockResult enriched with the classifier verdict."""

    decision: str = BlockDecision.CRITICAL.value
    intra_sad: float = 0.0
    sad_pbm: int = 0


@register_estimator("acbm")
class ACBMEstimator(MotionEstimator):
    """Adaptive Cost Block Matching — the paper's proposed algorithm.

    Parameters
    ----------
    p, block_size, half_pel:
        As in :class:`repro.me.estimator.MotionEstimator`; paper values
        are p=15, 16x16 blocks, half-pel on.
    params:
        α/β/γ configuration; defaults to the paper's tuned values.
    refine_steps:
        Bound on the predictive stage's integer refinement descent.
    lagrangian:
        When True, critical blocks pick between the predictive and the
        full-search vector by ``J = SAD + λ(Qp)·R(mvd)`` (differential
        MV bits against the H.263 median predictor) instead of raw SAD.
        Off by default — the paper's base algorithm compares SADs.
    surface_threshold:
        Critical-block count per frame after which the remaining
        critical full searches read one lazily built
        :func:`repro.me.engine.frame_sad_surfaces` pass instead of
        per-block SAD maps.  The whole-frame surface costs roughly
        20-25 per-block searches, so frames with few critical blocks
        (high Qp, calm content) stay on the per-block path and busy
        frames amortize one batched pass; both paths return bit-exact
        SAD surfaces, so the decisions and position counts never
        depend on the threshold.

    >>> est = ACBMEstimator()
    >>> (est.p, est.params.alpha, est.params.beta, est.params.gamma)
    (15, 1000.0, 8.0, 0.25)
    """

    def __init__(
        self,
        p: int = 15,
        block_size: int = 16,
        half_pel: bool = True,
        params: ACBMParameters | None = None,
        refine_steps: int = 2,
        lagrangian: bool = False,
        use_engine: bool = True,
        surface_threshold: int = 12,
    ) -> None:
        super().__init__(p=p, block_size=block_size, half_pel=half_pel, use_engine=use_engine)
        if surface_threshold < 0:
            raise ValueError(f"surface_threshold must be >= 0, got {surface_threshold}")
        self.params = params if params is not None else ACBMParameters.paper_defaults()
        self.lagrangian = lagrangian
        self.surface_threshold = surface_threshold
        # The embedded predictive stage; half-pel kept on so SAD_PBM is
        # the SAD of the vector PBM would actually deliver.
        self._pbm = PredictiveEstimator(
            p=p, block_size=block_size, half_pel=half_pel, refine_steps=refine_steps
        )

    def _vector_cost(self, sad: int, mv: MotionVector, ctx: BlockContext) -> float:
        """Arbitration metric between candidate vectors on a critical
        block: raw SAD, or the Lagrangian J when enabled."""
        if not self.lagrangian:
            return float(sad)
        predictor = predict_mv(ctx.field, ctx.mb_row, ctx.mb_col)
        return float(sad) + lagrange_lambda(ctx.qp) * mvd_bits(mv, predictor)

    def _critical_surfaces(self, ctx: BlockContext):
        """The frame's :class:`FrameSadSurfaces` for critical blocks, or
        ``None`` while the per-block path is still cheaper.

        Built lazily in the frame driver's shared cache once this
        frame's critical-block count crosses ``surface_threshold``; a
        single batched pass then serves every later critical block's
        full search.  Returns ``None`` when the engine is off, the
        frame has no shared cache (bare ``search_block`` calls), or the
        geometry is outside the batched kernel's envelope.
        """
        cache = ctx.frame_cache
        if cache is None or ctx.ref_plane is None or not self.use_engine:
            return None
        key = "acbm_critical_surfaces"
        if key not in cache:
            count = cache.get("acbm_critical_blocks", 0) + 1
            cache["acbm_critical_blocks"] = count
            if count <= self.surface_threshold:
                return None
            cur = np.asarray(ctx.current)
            cache[key] = (
                frame_sad_surfaces(cur, ctx.ref_plane, self.block_size, self.p)
                if cur.dtype == np.uint8
                and supports_vectorized_search(ctx.ref_plane.luma, self.block_size, self.p)
                else None
            )
        return cache[key]

    def search_block(self, ctx: BlockContext) -> BlockResult:
        activity = intra_sad(ctx.block)
        pbm_result = self._pbm.search_block(ctx)
        decision = classify_block(activity, pbm_result.sad, ctx.qp, self.params)
        mv: MotionVector = pbm_result.mv
        best_sad = pbm_result.sad
        positions = pbm_result.positions
        used_full_search = False
        if not decision.accepts_pbm:
            surfaces = self._critical_surfaces(ctx)
            if surfaces is not None:
                fs_sads, window = surfaces.block_surface(ctx.mb_row, ctx.mb_col)
            else:
                fs_sads, window = full_search_sads(
                    ctx.current, ctx.reference, ctx.block_y, ctx.block_x, self.block_size, self.p
                )
            fs_mv, fs_sad = select_minimum(fs_sads, window)
            positions += window.num_positions
            used_full_search = True
            if self.half_pel:
                fs_mv, fs_sad, extra = refine_half_pel(
                    ctx.block, ctx.matcher_reference, ctx.block_y, ctx.block_x, fs_mv, fs_sad, window
                )
                positions += extra
            if self._vector_cost(fs_sad, fs_mv, ctx) < self._vector_cost(best_sad, mv, ctx):
                mv, best_sad = fs_mv, fs_sad
        return ACBMBlockResult(
            mv=mv,
            sad=best_sad,
            positions=positions,
            used_full_search=used_full_search,
            decision=decision.value,
            intra_sad=activity,
            sad_pbm=pbm_result.sad,
        )
