"""Lagrangian motion cost, Section 2.1 of the paper.

``J(mv) = D(mv) + λ·R(mv)`` where D is the SAD, R the bits to code the
motion vector differentially, and λ grows with the quantization step.
The paper uses J only as the comparison metric between estimators; the
codec's mode decisions here use the same model so the RD experiments
measure what the paper measured.

λ(Qp) follows the convention popularized by the H.263+ test models:
``λ = 0.85 · Qp²`` scaled into SAD units (the paper's β·Qp² threshold
shape comes from the same quadratic dependence).
"""

from __future__ import annotations

from repro.me.types import MotionVector

#: Test-model constant relating λ to Qp² for SAD-based distortion.
LAMBDA_SCALE = 0.85


def lagrange_lambda(qp: int) -> float:
    """Lagrange multiplier for quantizer step ``qp`` (1..31 in H.263)."""
    if not 1 <= qp <= 31:
        raise ValueError(f"H.263 Qp must be in 1..31, got {qp}")
    return LAMBDA_SCALE * float(qp * qp) ** 0.5  # sqrt(Qp^2) = Qp for SAD-domain D


def motion_cost(sad: int, mv: MotionVector, predictor: MotionVector, qp: int, bits_fn) -> float:
    """``J = SAD + λ(Qp) · bits(mv − predictor)``.

    ``bits_fn`` maps a differential :class:`MotionVector` to its coded
    length (supplied by :mod:`repro.codec.mv_coding` to avoid a package
    cycle).
    """
    if sad < 0:
        raise ValueError(f"SAD must be >= 0, got {sad}")
    return float(sad) + lagrange_lambda(qp) * float(bits_fn(mv - predictor))
