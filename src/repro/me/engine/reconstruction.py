"""Whole-frame motion-compensation and reconstruction kernels.

The search side of the codec got frame-level batching in the engine's
first iteration (:mod:`repro.me.engine.kernels`); these kernels give the
*reconstruction* side the same treatment.  The seed decoder and the
encoder's closed loop walked macroblocks in Python, re-slicing (and for
chroma re-interpolating) the reference once per block:

* :func:`frame_mc_luma` — the motion-compensated luma prediction of a
  whole frame in one gather from :class:`ReferencePlane`'s cached
  half-pel plane (integer and half-pel vectors go through the same
  plane; even coordinates are the integer samples themselves).
* :func:`chroma_mv_grids` / :func:`frame_mc_chroma` — the H.263 chroma
  vector derivation (halving with away-from-zero rounding) and the
  clamped chroma motion compensation, vectorized over the macroblock
  grid.
* :func:`tile_luma_blocks` / :func:`tile_blocks` — reassemble per-block
  8x8 stacks into full planes (H.263 TL, TR, BL, BR luma block order).
* :func:`add_residual_clip` — the residual add + round + clamp that
  turns predictions and IDCT output into stored ``uint8`` planes.

Everything is bit-exact with the per-block reference path it replaces
(:func:`repro.me.subpel.predict_block`,
:func:`repro.codec.macroblock.predict_chroma_block` and the seed
decoder loop); ``tests/test_reconstruction.py`` holds the equivalence
proofs.
"""

from __future__ import annotations

import numpy as np

from repro.kernels import get_backend
from repro.me.engine.kernels import _window_bounds
from repro.me.engine.reference_plane import ReferencePlane


def _halve_away_from_zero(components: np.ndarray) -> np.ndarray:
    """Vectorized H.263 chroma halving: even components divide exactly,
    odd components round away from zero (the scalar
    :func:`repro.codec.macroblock.chroma_mv` rule)."""
    a = np.asarray(components, dtype=np.int64)
    odd = (a & 1) != 0
    return np.where(odd, np.where(a > 0, (a + 1) // 2, (a - 1) // 2), a // 2)


def chroma_mv_grids(luma_hx: np.ndarray, luma_hy: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Chroma vector component grids (chroma half-pel units) derived
    from luma component grids — :func:`repro.codec.macroblock.chroma_mv`
    over a whole motion field at once."""
    return _halve_away_from_zero(luma_hx), _halve_away_from_zero(luma_hy)


def mc_gather_numpy(
    half: np.ndarray, base_hy: np.ndarray, base_hx: np.ndarray, block_size: int
) -> np.ndarray:
    """Read one ``block_size`` square per grid cell from the cached
    half-pel plane at absolute half-pel origins ``(base_hy, base_hx)``
    and tile them into the ``(rows*s, cols*s)`` prediction plane — the
    numpy backend's binding for the ``mc_gather`` ABI entry."""
    rows, cols = base_hy.shape
    step = 2 * np.arange(block_size)
    pred = half[
        base_hy[:, :, None, None] + step[None, None, :, None],
        base_hx[:, :, None, None] + step[None, None, None, :],
    ]  # (rows, cols, s, s)
    return pred.transpose(0, 2, 1, 3).reshape(rows * block_size, cols * block_size)


def frame_mc_luma(
    plane: ReferencePlane,
    field_hx: np.ndarray,
    field_hy: np.ndarray,
    block_size: int = 16,
) -> np.ndarray:
    """Motion-compensated luma prediction of a whole frame.

    ``field_hx``/``field_hy`` are the motion field's half-pel component
    grids, shape ``(mb_rows, mb_cols)``.  Every block must stay inside
    the reference plane (H.263 baseline has no unrestricted MV mode);
    a vector whose support leaves the plane raises ``ValueError``, the
    same contract as the per-block :func:`repro.me.subpel.predict_block`.
    """
    s = block_size
    h, w = plane.shape
    rows, cols = h // s, w // s
    hx = np.asarray(field_hx, dtype=np.int64)
    hy = np.asarray(field_hy, dtype=np.int64)
    if hx.shape != (rows, cols) or hy.shape != (rows, cols):
        raise ValueError(
            f"motion grids {hx.shape}/{hy.shape} do not match the "
            f"{rows}x{cols} block grid of plane {plane.shape}"
        )
    base_hy = 2 * s * np.arange(rows, dtype=np.int64)[:, None] + hy
    base_hx = 2 * s * np.arange(cols, dtype=np.int64)[None, :] + hx
    if (
        (base_hy < 0).any()
        or (base_hy > 2 * (h - s)).any()
        or (base_hx < 0).any()
        or (base_hx > 2 * (w - s)).any()
    ):
        raise ValueError(f"motion field leaves the {h}x{w} reference plane")
    return get_backend().mc_gather(plane.half_plane, base_hy, base_hx, s)


def frame_mc_chroma(
    plane: ReferencePlane,
    field_hx: np.ndarray,
    field_hy: np.ndarray,
    p: int,
    block_size: int = 8,
) -> np.ndarray:
    """Motion-compensated chroma prediction of a whole frame.

    ``plane`` is one chroma plane's :class:`ReferencePlane`;
    ``field_hx``/``field_hy`` are the *luma* motion component grids.
    The derived chroma vectors are clamped into each block's legal
    chroma window (away-from-zero rounding can exceed the luma-implied
    support by one half-pel at the frame border), exactly mirroring
    :func:`repro.codec.macroblock.predict_chroma_block`.
    """
    s = block_size
    h, w = plane.shape
    rows, cols = h // s, w // s
    hx = np.asarray(field_hx, dtype=np.int64)
    hy = np.asarray(field_hy, dtype=np.int64)
    if hx.shape != (rows, cols) or hy.shape != (rows, cols):
        raise ValueError(
            f"motion grids {hx.shape}/{hy.shape} do not match the "
            f"{rows}x{cols} block grid of chroma plane {plane.shape}"
        )
    chx, chy = chroma_mv_grids(hx, hy)
    dx_min, dx_max, dy_min, dy_max = _window_bounds(h, w, s, p)
    chx = np.clip(chx, 2 * dx_min[None, :], 2 * dx_max[None, :])
    chy = np.clip(chy, 2 * dy_min[:, None], 2 * dy_max[:, None])
    base_hy = 2 * s * np.arange(rows, dtype=np.int64)[:, None] + chy
    base_hx = 2 * s * np.arange(cols, dtype=np.int64)[None, :] + chx
    return get_backend().mc_gather(plane.half_plane, base_hy, base_hx, s)


def tile_blocks(blocks: np.ndarray) -> np.ndarray:
    """``(rows, cols, s, s)`` block grid → ``(rows*s, cols*s)`` plane."""
    if blocks.ndim != 4 or blocks.shape[2] != blocks.shape[3]:
        raise ValueError(f"need a (rows, cols, s, s) block grid, got {blocks.shape}")
    rows, cols, s, _ = blocks.shape
    return blocks.transpose(0, 2, 1, 3).reshape(rows * s, cols * s)


def tile_luma_blocks(blocks: np.ndarray) -> np.ndarray:
    """``(rows, cols, 4, 8, 8)`` macroblock stacks in H.263 block order
    (TL, TR, BL, BR) → the ``(rows*16, cols*16)`` luma plane — the
    whole-frame :func:`repro.codec.macroblock.join_luma_blocks`."""
    if blocks.ndim != 5 or blocks.shape[2:] != (4, 8, 8):
        raise ValueError(f"need (rows, cols, 4, 8, 8) stacks, got {blocks.shape}")
    rows, cols = blocks.shape[:2]
    quad = blocks.reshape(rows, cols, 2, 2, 8, 8)
    return quad.transpose(0, 2, 4, 1, 3, 5).reshape(rows * 16, cols * 16)


def add_residual_clip(prediction: np.ndarray, residual: np.ndarray) -> np.ndarray:
    """Reconstruct a stored plane: ``clip(rint(residual + prediction))``
    back to uint8 — elementwise identical to the per-block decoder
    arithmetic, applied to whole planes at once."""
    return np.clip(np.rint(residual + prediction), 0, 255).astype(np.uint8)
