"""Batched SAD kernels: whole-frame search surfaces and candidate scoring.

The hot path of the reproduction is candidate evaluation.  The seed did
it one block and one candidate at a time; these kernels process a whole
frame per NumPy pass:

* :func:`frame_sad_surfaces` — the complete +-p SAD surface of every
  macroblock against the reference, one displacement-row at a time,
  with the per-displacement abs-difference reduced through a packed
  two-lane tree (two int16 partial sums ride in each int32 add) so the
  reduction stays SIMD- and cache-friendly.
* :func:`select_minima` — vectorized minimum pick over all blocks with
  the full search's exact shortest-vector tie-break.
* :func:`refine_half_pel_batch` — the 8-neighbour half-pel stage for
  every block at once, reading :class:`ReferencePlane`'s cached plane.
* :func:`evaluate_candidates_batch` — arbitrary (block, displacement)
  candidate lists scored in one gather, for the fast searches.
* :func:`frame_ring_sad` — one fixed candidate ring scored for every
  macroblock of the frame at once; backs the fast searches' batched
  first-stage evaluations (their only data-independent stage).

All outputs are bit-exact with the per-block reference implementations
(:func:`repro.me.full_search.full_search_sads`,
:func:`repro.me.full_search.select_minimum`,
:func:`repro.me.subpel.refine_half_pel`); ``tests/test_engine.py``
asserts the equivalence property-style.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.kernels import get_backend
from repro.me.engine.reference_plane import ReferencePlane
from repro.me.search_window import SearchWindow

#: Per-thread scratch for the surface kernel: a video encode calls it
#: once per frame with a constant geometry, so the padded reference and
#: the abs-difference buffer are reused instead of reallocated.
#: Thread-local keeps concurrent encodes (the estimator API contract)
#: from sharing buffers.
_SCRATCH = threading.local()


def _surface_workspace(h: int, w: int, p: int) -> tuple[np.ndarray, np.ndarray]:
    """(rpad, buf) scratch arrays for an ``h x w`` plane at window p."""
    key = (h, w, p)
    if getattr(_SCRATCH, "key", None) != key:
        _SCRATCH.key = key
        _SCRATCH.rpad = np.zeros((h, w + 2 * p), dtype=np.int16)
        _SCRATCH.buf = np.empty((h, 2 * p + 1, w), dtype=np.int16)
    return _SCRATCH.rpad, _SCRATCH.buf

#: Marks displacements whose candidate block leaves the reference plane.
#: Larger than any real SAD (16 x 16 x 255 = 65280) so plain ``min``
#: never selects it, yet small enough that int32 arithmetic stays exact.
SURFACE_SENTINEL = np.int32(1) << 30


def _luma(reference: np.ndarray | ReferencePlane) -> np.ndarray:
    return reference.luma if isinstance(reference, ReferencePlane) else np.asarray(reference)


def supports_vectorized_search(plane: np.ndarray, block_size: int, p: int) -> bool:
    """Whether the packed fast path applies.

    The packed-lane tree needs a power-of-two block edge small enough
    that the per-block-row partial sums (``block_size^2 / 2 * 255``)
    stay below an int16 lane, and the vectorized tie-break packs each
    displacement component into 6 bits.  The paper's 16x16 / p=15
    setting sits comfortably inside; anything else falls back to the
    per-block path with identical results.
    """
    s = block_size
    return (
        plane.ndim == 2
        and plane.dtype == np.uint8
        and s in (4, 8, 16)
        and 1 <= p <= 31
        and plane.shape[0] % s == 0
        and plane.shape[1] % s == 0
    )


# -- window geometry, vectorized over the block grid ---------------------


def _window_bounds(
    plane_h: int, plane_w: int, block_size: int, p: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """(dx_min, dx_max, dy_min, dy_max) per block column/row, the
    vectorized :func:`repro.me.search_window.clamped_window`."""
    s = block_size
    xs = np.arange(plane_w // s) * s
    ys = np.arange(plane_h // s) * s
    return (
        np.maximum(-p, -xs),
        np.minimum(p, plane_w - s - xs),
        np.maximum(-p, -ys),
        np.minimum(p, plane_h - s - ys),
    )


@dataclass
class FrameSadSurfaces:
    """Every macroblock's +-p SAD surface for one frame pair.

    ``surfaces[r, c, i, j]`` is the SAD of block ``(r, c)`` at
    displacement ``(dy, dx) = (i - p, j - p)``; positions whose
    candidate block leaves the plane hold :data:`SURFACE_SENTINEL`.
    """

    surfaces: np.ndarray  # (rows, cols, 2p+1, 2p+1) int32 (int64 via the generic fallback)
    block_size: int
    p: int
    plane_shape: tuple[int, int]

    @property
    def mb_rows(self) -> int:
        return self.surfaces.shape[0]

    @property
    def mb_cols(self) -> int:
        return self.surfaces.shape[1]

    def window(self, mb_row: int, mb_col: int) -> SearchWindow:
        """The clipped integer search window of one block."""
        h, w = self.plane_shape
        s = self.block_size
        y, x = mb_row * s, mb_col * s
        return SearchWindow(
            dx_min=max(-self.p, -x),
            dx_max=min(self.p, w - s - x),
            dy_min=max(-self.p, -y),
            dy_max=min(self.p, h - s - y),
        )

    def block_surface(self, mb_row: int, mb_col: int) -> tuple[np.ndarray, SearchWindow]:
        """One block's surface clipped to its valid window — the exact
        layout :func:`repro.me.full_search.full_search_sads` returns."""
        win = self.window(mb_row, mb_col)
        p = self.p
        sads = self.surfaces[
            mb_row,
            mb_col,
            win.dy_min + p : win.dy_max + p + 1,
            win.dx_min + p : win.dx_max + p + 1,
        ]
        return sads.astype(np.int64), win

    def positions(self) -> np.ndarray:
        """Valid candidate positions per block (``window.num_positions``
        of the clipped window), shape ``(rows, cols)`` int64."""
        h, w = self.plane_shape
        dx_min, dx_max, dy_min, dy_max = _window_bounds(h, w, self.block_size, self.p)
        return (
            (dy_max - dy_min + 1)[:, None] * (dx_max - dx_min + 1)[None, :]
        ).astype(np.int64)

    def deviations(self) -> np.ndarray:
        """Per-block ``SAD_deviation`` (paper Section 3.1): the sum of
        ``SAD(u, v) - SAD_min`` over every valid candidate, vectorized
        over the whole grid for the Fig. 4 rig."""
        surf = self.surfaces
        valid = surf != SURFACE_SENTINEL
        totals = np.where(valid, surf.astype(np.int64), 0).sum(axis=(2, 3))
        minima = np.where(valid, surf, np.int32(np.iinfo(np.int32).max)).min(axis=(2, 3))
        return totals - minima.astype(np.int64) * self.positions()


def frame_sad_surfaces(
    current: np.ndarray,
    reference: np.ndarray | ReferencePlane,
    block_size: int = 16,
    p: int = 15,
) -> FrameSadSurfaces:
    """Full +-p SAD surfaces for every macroblock of a frame in one
    vectorized pass.

    For each vertical displacement ``dy`` the whole frame's absolute
    differences against every horizontal displacement are materialized
    once (a sliding window over the x-padded reference) and reduced to
    per-block sums through a packed two-int16-lane tree.  Equivalent to
    calling :func:`repro.me.full_search.full_search_sads` per block,
    ~5x faster, and the backing store of the Fig. 4 rig's
    ``SAD_deviation``.
    """
    cur = np.asarray(current)
    ref = _luma(reference)
    if cur.shape != ref.shape:
        raise ValueError(f"plane shapes differ: {cur.shape} vs {ref.shape}")
    if p < 1:
        raise ValueError(f"p must be >= 1, got {p}")
    s = block_size
    h, w = cur.shape
    if h % s or w % s:
        raise ValueError(f"plane {cur.shape} not a multiple of block size {s}")
    if not supports_vectorized_search(ref, s, p) or cur.dtype != np.uint8:
        return _frame_sad_surfaces_generic(cur, ref, s, p)
    surf = get_backend().sad_surfaces(cur, ref, s, p)
    return FrameSadSurfaces(surfaces=surf, block_size=s, p=p, plane_shape=(h, w))


def sad_surfaces_numpy(cur: np.ndarray, ref: np.ndarray, s: int, p: int) -> np.ndarray:
    """The packed two-lane surface kernel — the numpy backend's binding
    for the ``sad_surfaces`` ABI entry.  Callers guarantee the packed
    envelope (uint8 planes inside :func:`supports_vectorized_search`)."""
    h, w = cur.shape
    rows, cols = h // s, w // s
    n = 2 * p + 1
    ci = cur.astype(np.int16)
    rpad, buf = _surface_workspace(h, w, p)
    rpad[:, p : p + w] = ref
    surf = np.full((rows, cols, n, n), SURFACE_SENTINEL, dtype=np.int32)
    # s is a power of two, so s//2 packed int32 lanes tree-halve to one.
    tree_levels = (s // 2).bit_length() - 1
    for dy in range(-p, p + 1):
        # Block rows whose displaced candidate stays inside the plane.
        r0 = 0 if dy >= 0 else (-dy + s - 1) // s
        r1 = rows if dy <= 0 else (h - dy) // s
        if r0 >= r1:
            continue
        y0, y1 = r0 * s, r1 * s
        # view[y, k, x] = rpad[y0 + dy + y, x + k]  (k = dx + p)
        view = sliding_window_view(rpad[y0 + dy : y1 + dy], w, axis=1)
        diff = buf[: y1 - y0]
        np.abs(np.subtract(ci[y0:y1, None, :], view, out=diff), out=diff)
        # Packed tree: each int32 add sums two int16 lanes at once.
        # Lane bound after the tree: (s/2) * 255 <= 2040; after the
        # s-row block sum: s * (s/2) * 255 <= 32640 < 2^15 — no carry
        # ever crosses the lane boundary.
        acc = diff.view(np.int32)
        for _ in range(tree_levels):
            acc = acc[..., ::2] + acc[..., 1::2]
        packed = acc.reshape(r1 - r0, s, n, cols).sum(axis=1)
        sums = (packed & 0xFFFF) + (packed >> 16)  # (rblocks, n, cols)
        surf[r0:r1, :, dy + p, :] = sums.transpose(0, 2, 1)
    # The x-padding made out-of-plane dx finite garbage; stamp the
    # sentinel back in.  Only border block columns are affected.
    dxs = np.arange(-p, p + 1)
    for c in range(cols):
        bad = (c * s + dxs < 0) | (c * s + s + dxs > w)
        if bad.any():
            surf[:, c, :, bad] = SURFACE_SENTINEL
    return surf


def _frame_sad_surfaces_generic(
    cur: np.ndarray, ref: np.ndarray, s: int, p: int
) -> FrameSadSurfaces:
    """Dtype/geometry-agnostic fallback: same output (int64 surface),
    one displacement at a time without the packed-lane tricks."""
    h, w = cur.shape
    rows, cols = h // s, w // s
    n = 2 * p + 1
    ci = cur.astype(np.int64)
    ri = ref.astype(np.int64)
    surf = np.full((rows, cols, n, n), SURFACE_SENTINEL, dtype=np.int64)
    for dy in range(-p, p + 1):
        r0 = 0 if dy >= 0 else (-dy + s - 1) // s
        r1 = rows if dy <= 0 else (h - dy) // s
        if r0 >= r1:
            continue
        for dx in range(-p, p + 1):
            c0 = 0 if dx >= 0 else (-dx + s - 1) // s
            c1 = cols if dx <= 0 else (w - dx) // s
            if c0 >= c1:
                continue
            a = ci[r0 * s : r1 * s, c0 * s : c1 * s]
            b = ri[r0 * s + dy : r1 * s + dy, c0 * s + dx : c1 * s + dx]
            diff = np.abs(a - b)
            surf[r0:r1, c0:c1, dy + p, dx + p] = diff.reshape(
                r1 - r0, s, c1 - c0, s
            ).sum(axis=(1, 3))
    return FrameSadSurfaces(surfaces=surf, block_size=s, p=p, plane_shape=(h, w))


def select_minima(fss: FrameSadSurfaces) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Minimum-SAD displacement of every block with the full search's
    shortest-vector tie-break.

    Returns ``(dx, dy, sads, positions)`` — integer-pel displacement
    grids, the winning SADs (int64) and the valid-position counts, all
    shaped ``(rows, cols)``.  Identical block-for-block to
    :func:`repro.me.full_search.select_minimum`.
    """
    p, n = fss.p, 2 * fss.p + 1
    rows, cols = fss.mb_rows, fss.mb_cols
    flat = fss.surfaces.reshape(rows, cols, n * n)
    minima = flat.min(axis=2)
    if p <= 31:
        # Tie-break key (max(|dx|,|dy|), |dy|, |dx|, dy, dx) packed
        # lexicographically into 30 bits; each field spans [0, 2p] so
        # 6 bits per field only holds up to p = 31.
        d = np.arange(-p, p + 1)
        ady, adx = np.abs(d)[:, None], np.abs(d)[None, :]
        key = np.maximum(ady, adx)
        key = (
            (((key * 64 + ady) * 64 + adx) * 64 + d[:, None] + p) * 64 + d[None, :] + p
        ).astype(np.int32)
        contenders = np.where(
            flat == minima[..., None], key.reshape(-1)[None, None, :], SURFACE_SENTINEL
        )
        idx = contenders.argmin(axis=2)
        dy = idx // n - p
        dx = idx % n - p
    else:
        # Wider windows: resolve ties per block with the reference
        # tuple key (ties are few; the surface min above stays
        # vectorized).
        dy = np.zeros((rows, cols), dtype=np.int64)
        dx = np.zeros((rows, cols), dtype=np.int64)
        for r in range(rows):
            for c in range(cols):
                ys, xs = np.nonzero(fss.surfaces[r, c] == minima[r, c])
                best = None
                for i, j in zip((ys - p).tolist(), (xs - p).tolist()):
                    key = (max(abs(j), abs(i)), abs(i), abs(j), i, j)
                    if best is None or key < best[0]:
                        best = (key, j, i)
                dx[r, c], dy[r, c] = best[1], best[2]
    return dx, dy, minima.astype(np.int64), fss.positions()


def refine_half_pel_batch(
    current: np.ndarray,
    plane: ReferencePlane,
    anchor_dx: np.ndarray,
    anchor_dy: np.ndarray,
    anchor_sads: np.ndarray,
    block_size: int,
    p: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """The 8-neighbour half-pel stage for every block at once.

    Anchors are integer-pel displacement grids (pixels); returns
    ``(hx, hy, sads, evaluated)`` in half-pel units, replaying the
    strict-improvement update of
    :func:`repro.me.subpel.refine_half_pel` in the same neighbour
    order so ties resolve identically.
    """
    # Imported at call time: subpel imports this package for
    # ReferencePlane, so a module-level import here would cycle
    # through the package __init__.  The order of this tuple is
    # observable (strict-improvement tie resolution) — share the one
    # definition rather than risking a stale copy.
    from repro.me.subpel import HALF_PEL_NEIGHBOURS

    h, w = plane.shape
    return get_backend().refine_half_pel(
        np.asarray(current),
        plane.half_plane,
        np.asarray(anchor_dx, dtype=np.int64),
        np.asarray(anchor_dy, dtype=np.int64),
        np.asarray(anchor_sads, dtype=np.int64),
        block_size,
        p,
        h,
        w,
        np.asarray(HALF_PEL_NEIGHBOURS, dtype=np.int64),
    )


def refine_half_pel_numpy(
    current: np.ndarray,
    half: np.ndarray,
    anchor_dx: np.ndarray,
    anchor_dy: np.ndarray,
    anchor_sads: np.ndarray,
    s: int,
    p: int,
    h: int,
    w: int,
    offs: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized half-pel core — the numpy backend's binding for the
    ``refine_half_pel`` ABI entry.  ``half`` is the cached half-pel
    plane; ``offs`` is the (8, 2) neighbour table as (dhx, dhy) whose
    order decides strict-improvement ties."""
    rows, cols = h // s, w // s
    cur_blocks = (
        np.asarray(current)
        .reshape(rows, s, cols, s)
        .transpose(0, 2, 1, 3)
        .astype(np.int16)
    )  # (rows, cols, s, s)
    dx_min, dx_max, dy_min, dy_max = _window_bounds(h, w, s, p)
    anchor_hx = 2 * anchor_dx
    anchor_hy = 2 * anchor_dy
    # Half-pel coordinates of each block's anchor inside the half plane.
    base_hy = 2 * (np.arange(rows) * s)[:, None] + anchor_hy
    base_hx = 2 * (np.arange(cols) * s)[None, :] + anchor_hx
    hx = anchor_hx[None, :, :] + offs[:, 0, None, None]  # (8, rows, cols)
    hy = anchor_hy[None, :, :] + offs[:, 1, None, None]
    valid = (
        (hx >= 2 * dx_min[None, None, :])
        & (hx <= 2 * dx_max[None, None, :])
        & (hy >= 2 * dy_min[None, :, None])
        & (hy <= 2 * dy_max[None, :, None])
    )
    gather_y = np.where(valid, base_hy[None, :, :] + offs[:, 1, None, None], 0)
    gather_x = np.where(valid, base_hx[None, :, :] + offs[:, 0, None, None], 0)
    step = 2 * np.arange(s)
    pred = half[
        gather_y[..., None, None] + step[None, None, None, :, None],
        gather_x[..., None, None] + step[None, None, None, None, :],
    ].astype(np.int16)  # (8, rows, cols, s, s)
    sads = (
        np.abs(pred - cur_blocks[None])
        .reshape(8, rows, cols, s * s)
        .sum(axis=3, dtype=np.int64)
    )
    best_hx, best_hy = anchor_hx.copy(), anchor_hy.copy()
    best_sad = np.asarray(anchor_sads, dtype=np.int64).copy()
    unreachable = np.int64(1) << 60
    for k in range(8):
        cand = np.where(valid[k], sads[k], unreachable)
        better = cand < best_sad
        best_sad = np.where(better, cand, best_sad)
        best_hx = np.where(better, hx[k], best_hx)
        best_hy = np.where(better, hy[k], best_hy)
    return best_hx, best_hy, best_sad, valid.sum(axis=0).astype(np.int64)


#: Cost sentinel for intra modes whose neighbours fall outside the
#: picture (vertical on the top macroblock row, horizontal on the left
#: column).  Far above any real SAD (a 16x16 uint8 block caps at
#: 255 * 256) yet safely below int64 overflow under sums/compares.
INTRA_UNAVAILABLE_COST = 1 << 62


def intra_mode_cost_surfaces(y: np.ndarray, block_size: int = 16) -> np.ndarray:
    """Open-loop SAD of every intra prediction mode for every block.

    Returns a ``(3, rows, cols)`` ``int64`` surface ordered DC /
    vertical / horizontal (:mod:`repro.codec.intra` mode indices),
    computed against the *source* luma — the batched twin of
    :func:`repro.codec.intra.intra_mode_costs_reference`, integer-exact
    with it so the engine and seed encoder paths choose identical modes
    (and therefore emit identical bytes).  Unavailable modes carry
    :data:`INTRA_UNAVAILABLE_COST`.
    """
    return get_backend().intra_mode_costs(y, block_size)


def intra_mode_costs_numpy(y: np.ndarray, block_size: int) -> np.ndarray:
    """Vectorized mode-cost core — the numpy backend's binding for the
    ``intra_mode_costs`` ABI entry."""
    s = block_size
    rows, cols = y.shape[0] // s, y.shape[1] // s
    cur = y.astype(np.int64)
    blocks = cur.reshape(rows, s, cols, s)
    costs = np.full((3, rows, cols), INTRA_UNAVAILABLE_COST, dtype=np.int64)
    costs[0] = np.abs(blocks - 128).sum(axis=(1, 3))
    if rows > 1:
        # Row directly above each block below the top row: plane rows
        # s-1, 2s-1, ... broadcast down the block height.
        above = cur[s - 1 :: s][: rows - 1].reshape(rows - 1, 1, cols, s)
        costs[1, 1:] = np.abs(blocks[1:] - above).sum(axis=(1, 3))
    if cols > 1:
        # Column directly left of each block right of the left column,
        # broadcast across the block width.
        left = cur[:, s - 1 :: s][:, : cols - 1].reshape(rows, s, cols - 1, 1)
        costs[2, :, 1:] = np.abs(blocks[:, :, 1:] - left).sum(axis=(1, 3))
    return costs


def frame_ring_sad(
    current: np.ndarray,
    reference: np.ndarray | ReferencePlane,
    offsets,
    block_size: int,
) -> np.ndarray:
    """SADs of *every* macroblock at one fixed displacement ring.

    The fast searches (TSS/NTSS/4SS/DS/HEXBS/CDS) all open with the
    same candidate pattern around ``(0, 0)`` for every block of the
    frame — the only stage of those searches that is data-independent
    and therefore batchable across blocks.  ``offsets`` is a sequence
    of ``(dx, dy)`` displacements; the return value has shape
    ``(mb_rows, mb_cols, len(offsets))`` (int64) with ``-1`` marking
    candidates whose block leaves the reference plane.  One gather
    replaces ``mb_rows * mb_cols`` per-block round trips; values are
    bit-exact with :func:`repro.me.metrics.sad` per candidate.
    """
    cur = np.asarray(current)
    ref = _luma(reference)
    if cur.shape != ref.shape:
        raise ValueError(f"plane shapes differ: {cur.shape} vs {ref.shape}")
    s = block_size
    h, w = cur.shape
    if h % s or w % s:
        raise ValueError(f"plane {cur.shape} not a multiple of block size {s}")
    offs = np.asarray(list(offsets), dtype=np.int64)
    if offs.ndim != 2 or offs.shape[1] != 2 or not len(offs):
        raise ValueError(f"offsets must be a non-empty sequence of (dx, dy) pairs, got {offs.shape}")
    rows, cols = h // s, w // s
    block_ys = np.repeat(np.arange(rows, dtype=np.int64) * s, cols)
    block_xs = np.tile(np.arange(cols, dtype=np.int64) * s, rows)
    k = offs.shape[0]
    dxs = np.broadcast_to(offs[:, 0], (rows * cols, k))
    dys = np.broadcast_to(offs[:, 1], (rows * cols, k))
    sads = evaluate_candidates_batch(cur, reference, block_ys, block_xs, dys, dxs, s)
    return sads.reshape(rows, cols, k)


def evaluate_candidates_batch(
    current: np.ndarray,
    reference: np.ndarray | ReferencePlane,
    block_ys: np.ndarray,
    block_xs: np.ndarray,
    dys: np.ndarray,
    dxs: np.ndarray,
    block_size: int,
) -> np.ndarray:
    """Integer-pel SADs for arbitrary candidate lists over many blocks.

    ``block_ys``/``block_xs`` are ``(N,)`` block pixel origins;
    ``dys``/``dxs`` are ``(N, K)`` displacement grids.  Returns an
    ``(N, K)`` int64 array with ``-1`` marking displacements whose
    candidate block leaves the reference plane.  One fancy-indexed
    gather replaces ``N*K`` Python-level slice-and-sum round trips.
    """
    cur = np.asarray(current)
    ref = _luma(reference)
    return get_backend().evaluate_candidates(
        cur, ref, block_ys, block_xs, dys, dxs, block_size
    )


def evaluate_candidates_numpy(
    cur: np.ndarray,
    ref: np.ndarray,
    block_ys: np.ndarray,
    block_xs: np.ndarray,
    dys: np.ndarray,
    dxs: np.ndarray,
    block_size: int,
) -> np.ndarray:
    """Fancy-indexed candidate-scoring core — the numpy backend's
    binding for the ``evaluate_candidates`` ABI entry."""
    s = block_size
    h, w = ref.shape
    by = np.asarray(block_ys, dtype=np.int64)[:, None]
    bx = np.asarray(block_xs, dtype=np.int64)[:, None]
    dy = np.asarray(dys, dtype=np.int64)
    dx = np.asarray(dxs, dtype=np.int64)
    y0 = by + dy
    x0 = bx + dx
    valid = (y0 >= 0) & (y0 + s <= h) & (x0 >= 0) & (x0 + s <= w)
    y0c = np.where(valid, y0, 0)
    x0c = np.where(valid, x0, 0)
    step = np.arange(s)
    narrow = ref.dtype == np.uint8 and cur.dtype == np.uint8
    ref_i = ref.astype(np.int16) if narrow else ref.astype(np.int64)
    cand = ref_i[
        y0c[..., None, None] + step[None, None, :, None],
        x0c[..., None, None] + step[None, None, None, :],
    ]  # (N, K, s, s)
    blocks = cur[
        (by + step[None, :])[:, :, None], (bx + step[None, :])[:, None, :]
    ]  # (N, s, s)
    diff = np.abs(cand - blocks[:, None].astype(cand.dtype))
    sads = diff.reshape(dy.shape[0], dy.shape[1], s * s).sum(axis=2, dtype=np.int64)
    return np.where(valid, sads, np.int64(-1))
