"""Per-frame reference cache with a precomputed half-pel plane.

H.263 half-pel samples (TMN5 rounding) interpolated for the whole
plane at once:

* horizontal half:  ``(a + b + 1) >> 1``
* vertical half:    ``(a + c + 1) >> 1``
* centre:           ``(a + b + c + d + 2) >> 2``

The seed implementation (:func:`repro.me.subpel.half_pel_block`)
interpolated a fresh 16x16 patch for every half-pel candidate of every
block — with FSBM's 8 half-pel neighbours that is ~800 interpolations
per QCIF frame, all re-deriving the same samples.  Here the
``(2H-1) x (2W-1)`` upsampled plane is built once per reference frame
and every half-pel block is a strided view into it.  Bit-exactness
with ``half_pel_block`` is asserted sample-for-sample by
``tests/test_engine.py``.
"""

from __future__ import annotations

import numpy as np

from repro.obs import metrics

#: ``wrap`` outcomes: a hit re-uses an existing plane (and whatever
#: half-pel work it already did); a miss constructs a fresh one.
#: ``half_builds`` counts actual whole-plane interpolations — the
#: expensive event the cache exists to amortize.  All are per-frame
#: frequency, never per-candidate.
_MET_WRAP_HITS = metrics.counter("refplane.hits")
_MET_WRAP_MISSES = metrics.counter("refplane.misses")
_MET_HALF_BUILDS = metrics.counter("refplane.half_builds")


class ReferencePlane:
    """The reference luma plane plus its lazily built half-pel upsampling.

    Build one per reference frame and share it between the motion
    estimators, the half-pel refinement and the encoder's motion
    compensation — they all read the same interpolated samples, so the
    SAD a search reports stays exactly the SAD the encoder's residual
    sees.

    Parameters
    ----------
    luma:
        2-D ``uint8`` reference plane.
    """

    __slots__ = ("luma", "_half")

    def __init__(self, luma: np.ndarray) -> None:
        arr = np.asarray(luma)
        if arr.ndim != 2:
            raise ValueError(f"reference plane must be 2-D, got shape {arr.shape}")
        if arr.dtype != np.uint8:
            raise ValueError(f"reference plane must be uint8, got {arr.dtype}")
        if arr.shape[0] < 2 or arr.shape[1] < 2:
            raise ValueError(f"reference plane {arr.shape} too small to interpolate")
        self.luma = np.ascontiguousarray(arr)
        self._half: np.ndarray | None = None

    # -- constructors ---------------------------------------------------

    @staticmethod
    def wrap(reference: "np.ndarray | ReferencePlane") -> "ReferencePlane | None":
        """Coerce to a plane; ``None`` when the array is not cacheable
        (wrong dtype/shape), in which case callers fall back to the
        per-candidate interpolation paths."""
        if isinstance(reference, ReferencePlane):
            _MET_WRAP_HITS.inc()
            return reference
        arr = np.asarray(reference)
        if arr.ndim != 2 or arr.dtype != np.uint8 or arr.shape[0] < 2 or arr.shape[1] < 2:
            return None
        _MET_WRAP_MISSES.inc()
        return ReferencePlane(arr)

    # -- planes ---------------------------------------------------------

    @property
    def shape(self) -> tuple[int, int]:
        return self.luma.shape

    @property
    def half_plane(self) -> np.ndarray:
        """The ``(2H-1) x (2W-1)`` half-pel plane; entry ``(hy, hx)`` is
        the H.263 bilinear sample at half-pel coordinate ``(hy, hx)``.
        Even coordinates are the integer samples themselves."""
        if self._half is None:
            _MET_HALF_BUILDS.inc()
            r = self.luma.astype(np.int32)
            h, w = self.luma.shape
            half = np.empty((2 * h - 1, 2 * w - 1), dtype=np.uint8)
            half[::2, ::2] = self.luma
            half[::2, 1::2] = ((r[:, :-1] + r[:, 1:] + 1) >> 1).astype(np.uint8)
            half[1::2, ::2] = ((r[:-1, :] + r[1:, :] + 1) >> 1).astype(np.uint8)
            half[1::2, 1::2] = (
                (r[:-1, :-1] + r[:-1, 1:] + r[1:, :-1] + r[1:, 1:] + 2) >> 2
            ).astype(np.uint8)
            self._half = half
        return self._half

    # -- block access ---------------------------------------------------

    def block(self, half_y: int, half_x: int, height: int, width: int) -> np.ndarray:
        """Predicted ``height x width`` block at half-pel coordinate
        ``(half_y, half_x)`` — the cached equivalent of
        :func:`repro.me.subpel.half_pel_block` (a strided view, no
        interpolation at call time)."""
        h, w = self.luma.shape
        if not (0 <= half_y <= 2 * (h - height) and 0 <= half_x <= 2 * (w - width)):
            raise ValueError(
                f"half-pel block at ({half_y}, {half_x}) size {height}x{width} "
                f"needs support outside plane {self.luma.shape}"
            )
        return self.half_plane[
            half_y : half_y + 2 * height - 1 : 2, half_x : half_x + 2 * width - 1 : 2
        ]

    def integer_block(self, y: int, x: int, height: int, width: int) -> np.ndarray:
        """Integer-pel reference patch (plain slice of the luma)."""
        h, w = self.luma.shape
        if not (0 <= y and y + height <= h and 0 <= x and x + width <= w):
            raise ValueError(
                f"block at ({y}, {x}) size {height}x{width} outside plane {self.luma.shape}"
            )
        return self.luma[y : y + height, x : x + width]

    def predict(self, block_y: int, block_x: int, mv, height: int, width: int) -> np.ndarray:
        """Motion-compensated prediction for one block: integer vectors
        take the plain-slice fast path, half-pel vectors read the cached
        plane.  Mirrors :func:`repro.me.subpel.predict_block`."""
        if mv.hx % 2 == 0 and mv.hy % 2 == 0:
            return self.integer_block(block_y + mv.hy // 2, block_x + mv.hx // 2, height, width)
        return self.block(2 * block_y + mv.hy, 2 * block_x + mv.hx, height, width)

    def __repr__(self) -> str:
        built = self._half is not None
        return f"ReferencePlane({self.luma.shape[0]}x{self.luma.shape[1]}, half_pel={'built' if built else 'lazy'})"
