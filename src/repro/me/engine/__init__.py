"""Frame-level vectorized search engine.

The seed reproduction evaluated every candidate with a per-block,
per-candidate Python-level SAD: each block re-sliced the reference and
each half-pel candidate re-ran the bilinear interpolation.  Real
encoders build the interpolated reference **once per frame** and batch
candidate evaluation; this package is that engine:

* :class:`ReferencePlane` — a per-frame cache around the reference luma
  with its 2x-upsampled half-pel plane (H.263 bilinear rounding,
  bit-exact with :func:`repro.me.subpel.half_pel_block`), built once
  and shared by every estimator, the half-pel refinement and the
  encoder's motion compensation.
* :func:`frame_sad_surfaces` — the full +-p SAD surface of *every*
  macroblock of a frame in one vectorized pass.
* :func:`select_minima` / :func:`refine_half_pel_batch` — vectorized
  minimum selection (full-search tie-break semantics) and batched
  8-neighbour half-pel refinement over all blocks at once.
* :func:`evaluate_candidates_batch` — arbitrary candidate lists scored
  for many blocks in one gather, used by the fast searches'
  :class:`repro.me.candidates.CandidateEvaluator`.

The reconstruction side gets the same treatment
(:mod:`repro.me.engine.reconstruction` and
:mod:`repro.me.engine.chroma_plane`):

* :class:`ChromaReferencePlane` — the Cb/Cr planes with their half-pel
  caches, shared by the encoder's closed loop and the decoder.
* :func:`frame_mc_luma` / :func:`frame_mc_chroma` — whole-frame motion
  compensation in one gather (chroma includes the H.263 vector
  derivation and border clamping).
* :func:`tile_luma_blocks` / :func:`tile_blocks` /
  :func:`add_residual_clip` — batched residual reassembly, rounding and
  clamping back to stored ``uint8`` planes.

Everything in here is *bit-exact* with the per-block reference
implementations it replaces; ``tests/test_engine.py`` and
``tests/test_reconstruction.py`` hold the golden equivalence proofs.
"""

from repro.me.engine.chroma_plane import ChromaReferencePlane
from repro.me.engine.kernels import (
    INTRA_UNAVAILABLE_COST,
    SURFACE_SENTINEL,
    FrameSadSurfaces,
    evaluate_candidates_batch,
    frame_ring_sad,
    frame_sad_surfaces,
    intra_mode_cost_surfaces,
    refine_half_pel_batch,
    select_minima,
    supports_vectorized_search,
)
from repro.me.engine.reconstruction import (
    add_residual_clip,
    chroma_mv_grids,
    frame_mc_chroma,
    frame_mc_luma,
    tile_blocks,
    tile_luma_blocks,
)
from repro.me.engine.reference_plane import ReferencePlane

__all__ = [
    "INTRA_UNAVAILABLE_COST",
    "SURFACE_SENTINEL",
    "ChromaReferencePlane",
    "FrameSadSurfaces",
    "ReferencePlane",
    "add_residual_clip",
    "chroma_mv_grids",
    "evaluate_candidates_batch",
    "frame_mc_chroma",
    "frame_mc_luma",
    "frame_ring_sad",
    "frame_sad_surfaces",
    "intra_mode_cost_surfaces",
    "refine_half_pel_batch",
    "select_minima",
    "supports_vectorized_search",
    "tile_blocks",
    "tile_luma_blocks",
]
