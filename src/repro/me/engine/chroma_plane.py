"""Per-frame chroma reference cache.

The luma side of the codec shares one :class:`ReferencePlane` per
reference frame; :class:`ChromaReferencePlane` is the 4:2:0 counterpart:
both chroma planes (Cb, Cr) wrapped in :class:`ReferencePlane` caches so
their H.263 half-pel samples are interpolated once per frame instead of
once per block (the seed re-ran the bilinear interpolation inside
:func:`repro.codec.macroblock.predict_chroma_block` for every
macroblock's Cb *and* Cr prediction).

Per-block reads stay available through
:func:`repro.codec.macroblock.predict_chroma_block` (which accepts the
wrapped planes); whole-frame motion compensation goes through
:meth:`ChromaReferencePlane.mc_frame`.
"""

from __future__ import annotations

import numpy as np

from repro.me.engine.reconstruction import frame_mc_chroma
from repro.me.engine.reference_plane import ReferencePlane


class ChromaReferencePlane:
    """The Cb/Cr reference planes plus their lazily built half-pel
    upsamplings, built once per reference frame and shared by the
    encoder's closed loop and the decoder.

    Parameters
    ----------
    cb, cr:
        2-D ``uint8`` chroma planes of equal shape.
    """

    __slots__ = ("cb", "cr")

    def __init__(self, cb: np.ndarray, cr: np.ndarray) -> None:
        self.cb = ReferencePlane.wrap(cb)
        self.cr = ReferencePlane.wrap(cr)
        if self.cb is None or self.cr is None:
            raise ValueError("chroma planes must be 2-D uint8 arrays of size >= 2x2")
        if self.cb.shape != self.cr.shape:
            raise ValueError(f"Cb/Cr shapes differ: {self.cb.shape} vs {self.cr.shape}")

    @staticmethod
    def wrap(cb: np.ndarray, cr: np.ndarray) -> "ChromaReferencePlane | None":
        """Coerce to a chroma cache; ``None`` when either plane is not
        cacheable (wrong dtype/shape), in which case callers fall back
        to the per-block interpolation path."""
        try:
            return ChromaReferencePlane(cb, cr)
        except ValueError:
            return None

    @property
    def shape(self) -> tuple[int, int]:
        """Chroma plane dimensions (height, width)."""
        return self.cb.shape

    def mc_frame(
        self, field_hx: np.ndarray, field_hy: np.ndarray, p: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Whole-frame motion-compensated (Cb, Cr) predictions from the
        *luma* motion component grids — the batched, cached equivalent
        of calling :func:`repro.codec.macroblock.predict_chroma_block`
        per macroblock for both chroma planes."""
        return (
            frame_mc_chroma(self.cb, field_hx, field_hy, p),
            frame_mc_chroma(self.cr, field_hx, field_hy, p),
        )

    def __repr__(self) -> str:
        h, w = self.shape
        return f"ChromaReferencePlane({h}x{w} per plane)"
