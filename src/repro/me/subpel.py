"""Half-pel interpolation and refinement.

H.263 (and the paper's TMN5 reference encoder) use bilinear half-pel
samples with upward rounding:

* horizontal half:  ``(a + b + 1) >> 1``
* vertical half:    ``(a + c + 1) >> 1``
* centre:           ``(a + b + c + d + 2) >> 2``

Both the estimators (candidate evaluation) and the codec (motion
compensation) read the same samples, so the SAD a search reports is
exactly the SAD the encoder's residual will see.  :func:`half_pel_block`
is the per-patch reference implementation; when callers hold a
:class:`repro.me.engine.ReferencePlane` the same samples come from its
precomputed half-pel plane instead (bit-exact, built once per frame).
"""

from __future__ import annotations

import numpy as np

from repro.me.engine.reference_plane import ReferencePlane
from repro.me.metrics import sad
from repro.me.search_window import SearchWindow, half_pel_window
from repro.me.types import MotionVector


def half_pel_block(
    ref: np.ndarray, half_y: int, half_x: int, height: int, width: int
) -> np.ndarray:
    """Predicted ``height x width`` block whose top-left corner sits at
    the half-pel coordinate ``(half_y, half_x)`` of ``ref``.

    Coordinates are in half-pel units (2 = one pixel).  The required
    integer support must lie inside the plane; callers get that
    guarantee from :func:`repro.me.search_window.half_pel_window`.
    """
    iy, ix = half_y >> 1, half_x >> 1  # floor division, exact for ints
    fy, fx = half_y & 1, half_x & 1
    h_need = height + (1 if fy else 0)
    w_need = width + (1 if fx else 0)
    if not (0 <= iy and iy + h_need <= ref.shape[0] and 0 <= ix and ix + w_need <= ref.shape[1]):
        raise ValueError(
            f"half-pel block at ({half_y}, {half_x}) size {height}x{width} "
            f"needs support outside plane {ref.shape}"
        )
    patch = ref[iy : iy + h_need, ix : ix + w_need].astype(np.int32)
    if fy == 0 and fx == 0:
        return patch[:height, :width].astype(np.uint8)
    if fy == 0:  # horizontal half-pel
        out = (patch[:, :-1] + patch[:, 1:] + 1) >> 1
        return out[:height].astype(np.uint8)
    if fx == 0:  # vertical half-pel
        out = (patch[:-1, :] + patch[1:, :] + 1) >> 1
        return out[:, :width].astype(np.uint8)
    out = (patch[:-1, :-1] + patch[:-1, 1:] + patch[1:, :-1] + patch[1:, 1:] + 2) >> 2
    return out.astype(np.uint8)


#: The 8 half-pel neighbour offsets around an integer-pel anchor.
HALF_PEL_NEIGHBOURS: tuple[tuple[int, int], ...] = (
    (-1, -1), (0, -1), (1, -1),
    (-1, 0), (1, 0),
    (-1, 1), (0, 1), (1, 1),
)


def refine_half_pel(
    block: np.ndarray,
    ref: np.ndarray | ReferencePlane,
    block_y: int,
    block_x: int,
    anchor: MotionVector,
    anchor_sad: int,
    window: SearchWindow,
) -> tuple[MotionVector, int, int]:
    """Evaluate the (up to) 8 half-pel candidates around an integer-pel
    ``anchor`` vector, exactly as FSBM's final stage (Section 2.3).

    Parameters
    ----------
    block:
        Current-frame block.
    ref:
        Reference plane — a raw array (per-candidate interpolation) or
        a :class:`ReferencePlane` (reads the cached half-pel plane;
        identical samples, built once per frame).
    block_y, block_x:
        Block top-left pixel position in the current frame.
    anchor, anchor_sad:
        Best integer-pel vector and its SAD.
    window:
        Integer-pel displacement bounds for this block.

    Returns
    -------
    (mv, sad, positions)
        Best vector among anchor + valid neighbours, its SAD, and the
        number of *extra* candidate positions evaluated (<= 8).
    """
    if not anchor.is_integer_pel:
        raise ValueError(f"half-pel refinement anchor must be integer-pel, got {anchor}")
    plane = ref if isinstance(ref, ReferencePlane) else None
    hwin = half_pel_window(window)
    best_mv, best_sad = anchor, anchor_sad
    evaluated = 0
    h, w = block.shape
    for dhx, dhy in HALF_PEL_NEIGHBOURS:
        hx, hy = anchor.hx + dhx, anchor.hy + dhy
        if not hwin.contains(hx, hy):
            continue
        if plane is not None:
            pred = plane.block(2 * block_y + hy, 2 * block_x + hx, h, w)
        else:
            pred = half_pel_block(ref, 2 * block_y + hy, 2 * block_x + hx, h, w)
        cand_sad = sad(block, pred)
        evaluated += 1
        if cand_sad < best_sad:
            best_mv, best_sad = MotionVector(hx, hy), cand_sad
    return best_mv, best_sad, evaluated


def predict_block(
    ref: np.ndarray | ReferencePlane,
    block_y: int,
    block_x: int,
    mv: MotionVector,
    height: int,
    width: int,
) -> np.ndarray:
    """Motion-compensated prediction for a block: the reference patch the
    codec subtracts.  Dispatches between the integer fast path and
    half-pel interpolation; a :class:`ReferencePlane` serves both from
    its caches."""
    if isinstance(ref, ReferencePlane):
        return ref.predict(block_y, block_x, mv, height, width)
    if mv.is_integer_pel:
        y = block_y + mv.hy // 2
        x = block_x + mv.hx // 2
        if not (0 <= y and y + height <= ref.shape[0] and 0 <= x and x + width <= ref.shape[1]):
            raise ValueError(f"prediction with {mv} at ({block_y}, {block_x}) leaves plane {ref.shape}")
        return ref[y : y + height, x : x + width]
    return half_pel_block(ref, 2 * block_y + mv.hy, 2 * block_x + mv.hx, height, width)
