"""Full-search block matching (FSBM), Section 2.3 of the paper.

Evaluates every integer displacement in the (clipped) ±p window with a
vectorized SAD map, then refines the winner over the 8 half-pel
neighbours.  With p = 15 and no border clipping that is the paper's
961 + 8 = 969 candidate positions per macroblock.

Tie-breaking: among equal-SAD minima the vector with the smallest
Chebyshev length wins (then smaller dy, then dx).  This mirrors real
encoders' preference for short vectors — they cost fewer MVD bits — and
makes results deterministic.
"""

from __future__ import annotations

import numpy as np

from repro.me.estimator import BlockContext, MotionEstimator, register_estimator
from repro.me.metrics import sad_map
from repro.me.search_window import SearchWindow, clamped_window
from repro.me.subpel import refine_half_pel
from repro.me.types import BlockResult, MotionVector


def full_search_sads(
    current: np.ndarray,
    reference: np.ndarray,
    block_y: int,
    block_x: int,
    block_size: int,
    p: int,
) -> tuple[np.ndarray, SearchWindow]:
    """SADs of one block against every integer candidate in its window.

    Returns ``(sads, window)`` where ``sads[i, j]`` corresponds to the
    displacement ``(dy, dx) = (window.dy_min + i, window.dx_min + j)``.
    Shared by the FSBM estimator and the Fig. 4 characterization rig
    (which also needs the full SAD surface for SAD_deviation).
    """
    window = clamped_window(
        block_y, block_x, block_size, block_size, reference.shape[0], reference.shape[1], p
    )
    block = current[block_y : block_y + block_size, block_x : block_x + block_size]
    region = reference[
        block_y + window.dy_min : block_y + window.dy_max + block_size,
        block_x + window.dx_min : block_x + window.dx_max + block_size,
    ]
    return sad_map(block, region), window


def select_minimum(sads: np.ndarray, window: SearchWindow) -> tuple[MotionVector, int]:
    """Pick the minimum-SAD displacement with the shortest-vector
    tie-break.  Returns an integer-pel :class:`MotionVector` and its SAD."""
    min_sad = int(sads.min())
    ys, xs = np.nonzero(sads == min_sad)
    best = None
    for i, j in zip(ys.tolist(), xs.tolist()):
        dy = window.dy_min + i
        dx = window.dx_min + j
        key = (max(abs(dx), abs(dy)), abs(dy), abs(dx), dy, dx)
        if best is None or key < best[0]:
            best = (key, dx, dy)
    _, dx, dy = best
    return MotionVector(2 * dx, 2 * dy), min_sad


@register_estimator("fsbm")
class FullSearchEstimator(MotionEstimator):
    """Exhaustive search: the paper's quality reference and cost ceiling.

    >>> est = FullSearchEstimator(p=15)
    >>> est.name
    'fsbm'
    """

    def search_block(self, ctx: BlockContext) -> BlockResult:
        sads, window = full_search_sads(
            ctx.current, ctx.reference, ctx.block_y, ctx.block_x, self.block_size, self.p
        )
        mv, best_sad = select_minimum(sads, window)
        positions = window.num_positions
        if self.half_pel:
            mv, best_sad, extra = refine_half_pel(
                ctx.block, ctx.reference, ctx.block_y, ctx.block_x, mv, best_sad, window
            )
            positions += extra
        return BlockResult(mv=mv, sad=best_sad, positions=positions, used_full_search=True)
