"""Full-search block matching (FSBM), Section 2.3 of the paper.

Evaluates every integer displacement in the (clipped) ±p window, then
refines the winner over the 8 half-pel neighbours.  With p = 15 and no
border clipping that is the paper's 961 + 8 = 969 candidate positions
per macroblock.

Two equivalent paths produce the decision:

* the per-block path (:meth:`FullSearchEstimator.search_block`): a
  vectorized SAD map over one block's window — the seed implementation,
  kept as the fallback and the golden reference;
* the frame path (:meth:`FullSearchEstimator.estimate_frame`): the
  engine's :func:`repro.me.engine.frame_sad_surfaces` computes every
  block's surface in one batched pass and the half-pel stage reads the
  shared :class:`repro.me.engine.ReferencePlane` — ~5x faster,
  bit-identical fields, SADs and position counts.

Tie-breaking: among equal-SAD minima the vector with the smallest
Chebyshev length wins (then smaller dy, then dx).  This mirrors real
encoders' preference for short vectors — they cost fewer MVD bits — and
makes results deterministic.
"""

from __future__ import annotations

import numpy as np

from repro.me.engine.kernels import (
    frame_sad_surfaces,
    refine_half_pel_batch,
    select_minima,
    supports_vectorized_search,
)
from repro.me.engine.reference_plane import ReferencePlane
from repro.me.estimator import BlockContext, MotionEstimator, register_estimator
from repro.me.metrics import sad_map
from repro.me.search_window import SearchWindow, clamped_window
from repro.me.stats import SearchStats
from repro.me.subpel import refine_half_pel
from repro.me.types import BlockResult, MotionField, MotionVector


def full_search_sads(
    current: np.ndarray,
    reference: np.ndarray,
    block_y: int,
    block_x: int,
    block_size: int,
    p: int,
) -> tuple[np.ndarray, SearchWindow]:
    """SADs of one block against every integer candidate in its window.

    Returns ``(sads, window)`` where ``sads[i, j]`` corresponds to the
    displacement ``(dy, dx) = (window.dy_min + i, window.dx_min + j)``.
    Shared by the FSBM estimator and the Fig. 4 characterization rig
    (which also needs the full SAD surface for SAD_deviation).
    """
    window = clamped_window(
        block_y, block_x, block_size, block_size, reference.shape[0], reference.shape[1], p
    )
    block = current[block_y : block_y + block_size, block_x : block_x + block_size]
    region = reference[
        block_y + window.dy_min : block_y + window.dy_max + block_size,
        block_x + window.dx_min : block_x + window.dx_max + block_size,
    ]
    return sad_map(block, region), window


def select_minimum(sads: np.ndarray, window: SearchWindow) -> tuple[MotionVector, int]:
    """Pick the minimum-SAD displacement with the shortest-vector
    tie-break.  Returns an integer-pel :class:`MotionVector` and its SAD."""
    min_sad = int(sads.min())
    ys, xs = np.nonzero(sads == min_sad)
    best = None
    for i, j in zip(ys.tolist(), xs.tolist()):
        dy = window.dy_min + i
        dx = window.dx_min + j
        key = (max(abs(dx), abs(dy)), abs(dy), abs(dx), dy, dx)
        if best is None or key < best[0]:
            best = (key, dx, dy)
    _, dx, dy = best
    return MotionVector(2 * dx, 2 * dy), min_sad


@register_estimator("fsbm")
class FullSearchEstimator(MotionEstimator):
    """Exhaustive search: the paper's quality reference and cost ceiling.

    >>> est = FullSearchEstimator(p=15)
    >>> est.name
    'fsbm'
    """

    def search_block(self, ctx: BlockContext) -> BlockResult:
        sads, window = full_search_sads(
            ctx.current, ctx.reference, ctx.block_y, ctx.block_x, self.block_size, self.p
        )
        mv, best_sad = select_minimum(sads, window)
        positions = window.num_positions
        if self.half_pel:
            mv, best_sad, extra = refine_half_pel(
                ctx.block, ctx.matcher_reference, ctx.block_y, ctx.block_x, mv, best_sad, window
            )
            positions += extra
        return BlockResult(mv=mv, sad=best_sad, positions=positions, used_full_search=True)

    def estimate_frame(
        self,
        current: np.ndarray,
        reference: np.ndarray,
        plane: ReferencePlane | None,
        prev_field,
        qp: int,
    ) -> tuple[MotionField, SearchStats]:
        """Whole-frame batched FSBM via the engine kernels.

        Falls back to the per-block raster walk when the engine is off
        or the geometry is outside the fast path's envelope; both paths
        emit bit-identical fields, SADs and position counts (proven by
        the golden tests in ``tests/test_engine.py``).
        """
        if (
            plane is None
            or np.asarray(current).dtype != np.uint8
            or not supports_vectorized_search(plane.luma, self.block_size, self.p)
        ):
            return super().estimate_frame(current, reference, plane, prev_field, qp)
        surfaces = frame_sad_surfaces(current, plane, self.block_size, self.p)
        dx, dy, sads, positions = select_minima(surfaces)
        if self.half_pel:
            hx, hy, sads, extra = refine_half_pel_batch(
                current, plane, dx, dy, sads, self.block_size, self.p
            )
            positions = positions + extra
        else:
            hx, hy = 2 * dx, 2 * dy
        field = MotionField.from_arrays(hx, hy)
        stats = SearchStats()
        stats.record_frame(positions, used_full_search=True)
        return field, stats
