"""Four-step search (4SS) — Po & Ma [4] in the paper's taxonomy.

Searches a 5x5 neighbourhood with a fixed step of 2: if the best point
is the window centre the step drops to 1 (final 3x3 stage), otherwise
the 5x5 pattern re-centres (classically at most twice before the final
stage; we keep that bound).  Exploits the centre-biased motion-vector
distribution of real video.
"""

from __future__ import annotations

from repro.me.candidates import CandidateEvaluator
from repro.me.estimator import BlockContext, MotionEstimator, register_estimator
from repro.me.search_window import clamped_window
from repro.me.subpel import refine_half_pel
from repro.me.types import BlockResult

_OUTER = tuple(
    (ox, oy)
    for ox in (-2, 0, 2)
    for oy in (-2, 0, 2)
    if not (ox == 0 and oy == 0)
)
_INNER = tuple(
    (ox, oy)
    for ox in (-1, 0, 1)
    for oy in (-1, 0, 1)
    if not (ox == 0 and oy == 0)
)


@register_estimator("fss")
class FourStepEstimator(MotionEstimator):
    """Classic four-step search with half-pel refinement."""

    def __init__(
        self,
        p: int = 15,
        block_size: int = 16,
        half_pel: bool = True,
        max_recentres: int = 2,
        use_engine: bool = True,
    ) -> None:
        super().__init__(p=p, block_size=block_size, half_pel=half_pel, use_engine=use_engine)
        if max_recentres < 0:
            raise ValueError(f"max_recentres must be >= 0, got {max_recentres}")
        self.max_recentres = max_recentres

    def first_ring(self):
        """Centre plus the opening 5x5/step-2 pattern, batched across
        blocks by the frame driver."""
        return ((0, 0),) + _OUTER

    def search_block(self, ctx: BlockContext) -> BlockResult:
        window = clamped_window(
            ctx.block_y,
            ctx.block_x,
            self.block_size,
            self.block_size,
            ctx.reference.shape[0],
            ctx.reference.shape[1],
            self.p,
        )
        evaluator = CandidateEvaluator(
            ctx.block, ctx.matcher_reference, ctx.block_y, ctx.block_x, window,
            precomputed=ctx.warm_sads,
        )
        evaluator.evaluate(0, 0)
        evaluator.evaluate_many(_OUTER)
        recentres = 0
        while (evaluator.best_dx, evaluator.best_dy) != (0, 0) and recentres < self.max_recentres:
            cx, cy = evaluator.best_dx, evaluator.best_dy
            evaluator.evaluate_many((cx + ox, cy + oy) for ox, oy in _OUTER)
            if (evaluator.best_dx, evaluator.best_dy) == (cx, cy):
                break
            recentres += 1
        cx, cy = evaluator.best_dx, evaluator.best_dy
        evaluator.evaluate_many((cx + ox, cy + oy) for ox, oy in _INNER)
        mv, best_sad = evaluator.best()
        positions = evaluator.positions
        if self.half_pel:
            mv, best_sad, extra = refine_half_pel(
                ctx.block, ctx.matcher_reference, ctx.block_y, ctx.block_x, mv, best_sad, window
            )
            positions += extra
        return BlockResult(mv=mv, sad=best_sad, positions=positions)
