"""New three-step search (NTSS) — Li, Zeng & Liou's centre-biased TSS.

NTSS fixes classic TSS's weakness on small displacements: the first
stage evaluates *both* the 8 step-sized TSS points and the 8 unit
neighbours of the centre.  If the best point is the centre, stop; if
it is one of the unit neighbours, one extra 3x3 stage around it
finishes (at most 5 new points); otherwise the ordinary TSS descent
continues.  Real-video vector fields are strongly centre-biased, so
the average cost drops well below TSS's while accuracy improves.

Not cited by the paper directly but contemporary with its baselines;
included in the ablation bench for completeness.
"""

from __future__ import annotations

from repro.me.candidates import CandidateEvaluator
from repro.me.estimator import BlockContext, MotionEstimator, register_estimator
from repro.me.search_window import clamped_window
from repro.me.subpel import refine_half_pel
from repro.me.three_step import initial_step
from repro.me.types import BlockResult

_UNIT_RING = ((-1, -1), (0, -1), (1, -1), (-1, 0), (1, 0), (-1, 1), (0, 1), (1, 1))


@register_estimator("ntss")
class NewThreeStepEstimator(MotionEstimator):
    """Centre-biased new three-step search with half-pel refinement."""

    def first_ring(self):
        """Centre, the unit ring and the step-sized ring — NTSS's fixed
        first stage, batched across blocks by the frame driver."""
        step = initial_step(self.p)
        ring = [(0, 0)]
        for ox, oy in _UNIT_RING:
            ring.append((ox, oy))
            if (ox * step, oy * step) not in ring:
                ring.append((ox * step, oy * step))
        return tuple(ring)

    def search_block(self, ctx: BlockContext) -> BlockResult:
        window = clamped_window(
            ctx.block_y,
            ctx.block_x,
            self.block_size,
            self.block_size,
            ctx.reference.shape[0],
            ctx.reference.shape[1],
            self.p,
        )
        evaluator = CandidateEvaluator(
            ctx.block, ctx.matcher_reference, ctx.block_y, ctx.block_x, window,
            precomputed=ctx.warm_sads,
        )
        evaluator.evaluate(0, 0)
        step = initial_step(self.p)
        # First stage: step-sized ring plus the unit ring.
        for ox, oy in _UNIT_RING:
            evaluator.evaluate(ox, oy)
            evaluator.evaluate(ox * step, oy * step)
        best = (evaluator.best_dx, evaluator.best_dy)
        if best == (0, 0):
            pass  # first-step stop
        elif max(abs(best[0]), abs(best[1])) <= 1:
            # Second-step stop: a 3x3 patch around the unit winner.
            cx, cy = best
            evaluator.evaluate_many((cx + ox, cy + oy) for ox, oy in _UNIT_RING)
        else:
            # Ordinary TSS continuation from the step-ring winner.
            step //= 2
            while step >= 1:
                cx, cy = evaluator.best_dx, evaluator.best_dy
                evaluator.evaluate_many(
                    (cx + ox * step, cy + oy * step) for ox, oy in _UNIT_RING
                )
                step //= 2
        mv, best_sad = evaluator.best()
        positions = evaluator.positions
        if self.half_pel:
            mv, best_sad, extra = refine_half_pel(
                ctx.block, ctx.matcher_reference, ctx.block_y, ctx.block_x, mv, best_sad, window
            )
            positions += extra
        return BlockResult(mv=mv, sad=best_sad, positions=positions)
