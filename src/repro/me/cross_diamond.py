"""Cross-diamond search (CDS) — Cheung & Po [5] in the paper's taxonomy.

Starts with a 9-point cross whose early-termination rule exploits the
strongly centre-biased MV distribution of real video (most blocks stop
after <= 9 evaluations), then falls back to the diamond walk of DS for
the minority of moving blocks.
"""

from __future__ import annotations

from repro.me.candidates import CandidateEvaluator
from repro.me.diamond import LARGE_DIAMOND, SMALL_DIAMOND
from repro.me.estimator import BlockContext, MotionEstimator, register_estimator
from repro.me.search_window import clamped_window
from repro.me.subpel import refine_half_pel
from repro.me.types import BlockResult

#: Central 3x3 cross (L1 radius 1) plus the radius-2 cross arms.
_CROSS_CENTRE = ((0, -1), (-1, 0), (1, 0), (0, 1))
_CROSS_ARMS = ((0, -2), (-2, 0), (2, 0), (0, 2))


@register_estimator("cds")
class CrossDiamondEstimator(MotionEstimator):
    """Cross-diamond search with half-pel refinement."""

    def __init__(
        self,
        p: int = 15,
        block_size: int = 16,
        half_pel: bool = True,
        max_recentres: int = 32,
        use_engine: bool = True,
    ) -> None:
        super().__init__(p=p, block_size=block_size, half_pel=half_pel, use_engine=use_engine)
        if max_recentres < 1:
            raise ValueError(f"max_recentres must be >= 1, got {max_recentres}")
        self.max_recentres = max_recentres

    def first_ring(self):
        """Centre plus the small cross — CDS's unconditional opening.
        The radius-2 arms are *not* included: most real-video blocks
        take the first-step stop, so pre-scoring the arms for every
        block would waste more gathers than it saves."""
        return ((0, 0),) + _CROSS_CENTRE

    def search_block(self, ctx: BlockContext) -> BlockResult:
        window = clamped_window(
            ctx.block_y,
            ctx.block_x,
            self.block_size,
            self.block_size,
            ctx.reference.shape[0],
            ctx.reference.shape[1],
            self.p,
        )
        evaluator = CandidateEvaluator(
            ctx.block, ctx.matcher_reference, ctx.block_y, ctx.block_x, window,
            precomputed=ctx.warm_sads,
        )
        evaluator.evaluate(0, 0)
        evaluator.evaluate_many(_CROSS_CENTRE)
        # First-step stop: stationary block, centre already optimal.
        if (evaluator.best_dx, evaluator.best_dy) != (0, 0):
            evaluator.evaluate_many(_CROSS_ARMS)
            # Second-step stop: winner still within the small cross.
            if abs(evaluator.best_dx) + abs(evaluator.best_dy) > 1:
                evaluator.descend(LARGE_DIAMOND, self.max_recentres)
                cx, cy = evaluator.best_dx, evaluator.best_dy
                evaluator.evaluate_many((cx + ox, cy + oy) for ox, oy in SMALL_DIAMOND)
        mv, best_sad = evaluator.best()
        positions = evaluator.positions
        if self.half_pel:
            mv, best_sad, extra = refine_half_pel(
                ctx.block, ctx.matcher_reference, ctx.block_y, ctx.block_x, mv, best_sad, window
            )
            positions += extra
        return BlockResult(mv=mv, sad=best_sad, positions=positions)
