"""Shared candidate bookkeeping for the non-exhaustive searches.

Predictive, three-step, four-step, diamond and cross-diamond searches
all do the same inner operation: evaluate the SAD at an integer
displacement, skipping displacements outside the window and ones
already visited, while counting evaluations.  :class:`CandidateEvaluator`
centralizes that so every algorithm's position accounting is consistent
with the paper's (each *distinct* candidate position counts once).

Candidate *sets* (a predictor list, a search pattern ring) are scored
through the engine's :func:`repro.me.engine.evaluate_candidates_batch`
— one vectorized gather instead of a Python round trip per candidate —
while the best-so-far update replays in the original order, keeping
tie-breaks and position counts bit-identical to the sequential path.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.me.engine.kernels import evaluate_candidates_batch
from repro.me.engine.reference_plane import ReferencePlane
from repro.me.metrics import sad
from repro.me.search_window import SearchWindow
from repro.me.types import MotionVector

#: Below this many uncached in-window candidates the gather set-up costs
#: more than it saves; evaluate one by one.
_BATCH_THRESHOLD = 3


class CandidateEvaluator:
    """Evaluates integer-pel candidates for one block, with memoization.

    Tracks the running best (SAD, shortest-vector tie-break identical to
    the full search's) and the number of evaluated positions.
    ``reference`` may be a raw plane or a shared
    :class:`ReferencePlane`.  ``precomputed`` optionally maps
    ``(dx, dy)`` to already-scored SADs (the frame driver's batched
    first ring): a miss in the evaluator's own cache consults it before
    computing, so precomputed positions still count as evaluated only
    once the search actually visits them — position accounting and
    tie-breaks stay bit-identical to the unseeded path.
    """

    def __init__(
        self,
        block: np.ndarray,
        reference: np.ndarray | ReferencePlane,
        block_y: int,
        block_x: int,
        window: SearchWindow,
        precomputed: "Mapping[tuple[int, int], int] | None" = None,
    ) -> None:
        self.block = block
        self.reference = reference.luma if isinstance(reference, ReferencePlane) else reference
        self.block_y = block_y
        self.block_x = block_x
        self.window = window
        self._pre = precomputed if precomputed else None
        self._cache: dict[tuple[int, int], int] = {}
        self.best_dx: int | None = None
        self.best_dy: int | None = None
        self.best_sad: int | None = None

    @property
    def positions(self) -> int:
        """Distinct candidate positions evaluated so far."""
        return len(self._cache)

    @staticmethod
    def _tiebreak_key(dx: int, dy: int) -> tuple[int, int, int, int, int]:
        return (max(abs(dx), abs(dy)), abs(dy), abs(dx), dy, dx)

    def evaluate(self, dx: int, dy: int) -> int | None:
        """SAD at displacement ``(dx, dy)``; ``None`` if outside the
        window.  Re-evaluating a visited position is free (cached) and
        does not increment the position count."""
        if not self.window.contains(dx, dy):
            return None
        key = (dx, dy)
        cached = self._cache.get(key)
        if cached is not None:
            value = cached
        else:
            value = self._pre.get(key) if self._pre is not None else None
            if value is None:
                s = self.block.shape[0]
                y = self.block_y + dy
                x = self.block_x + dx
                ref_block = self.reference[y : y + s, x : x + self.block.shape[1]]
                value = sad(self.block, ref_block)
            self._cache[key] = value
        self._update_best(dx, dy, value)
        return value

    def _update_best(self, dx: int, dy: int, value: int) -> None:
        better = (
            self.best_sad is None
            or value < self.best_sad
            or (
                value == self.best_sad
                and self._tiebreak_key(dx, dy) < self._tiebreak_key(self.best_dx, self.best_dy)
            )
        )
        if better:
            self.best_dx, self.best_dy, self.best_sad = dx, dy, value

    def evaluate_many(self, displacements) -> None:
        """Evaluate an iterable of ``(dx, dy)`` displacements.

        Uncached in-window candidates are scored in one vectorized
        batch; the best-so-far then updates in the iteration order, so
        results match calling :meth:`evaluate` sequentially.
        """
        disp = list(displacements)
        fresh: list[tuple[int, int]] = []
        seen: set[tuple[int, int]] = set()
        for dx, dy in disp:
            pos = (dx, dy)
            if (
                self.window.contains(dx, dy)
                and pos not in self._cache
                and pos not in seen
                and (self._pre is None or pos not in self._pre)
            ):
                seen.add(pos)
                fresh.append(pos)
        if len(fresh) >= _BATCH_THRESHOLD and self.block.shape[0] == self.block.shape[1]:
            arr = np.array(fresh)
            sads = evaluate_candidates_batch(
                self.block,
                self.reference,
                np.array([0]),
                np.array([0]),
                (self.block_y + arr[:, 1])[None, :],
                (self.block_x + arr[:, 0])[None, :],
                self.block.shape[0],
            )[0]
            for (dx, dy), value in zip(fresh, sads.tolist()):
                if value >= 0:
                    self._cache[(dx, dy)] = value
        for dx, dy in disp:
            self.evaluate(dx, dy)

    def best(self) -> tuple[MotionVector, int]:
        """Best integer-pel vector found and its SAD."""
        if self.best_sad is None:
            raise RuntimeError("no candidate evaluated yet")
        return MotionVector(2 * self.best_dx, 2 * self.best_dy), self.best_sad

    def descend(self, pattern, max_steps: int) -> None:
        """Greedy descent: repeatedly re-centre ``pattern`` (a list of
        ``(dx, dy)`` offsets) on the current best until no improvement
        or ``max_steps`` recentrings."""
        for _ in range(max_steps):
            centre = (self.best_dx, self.best_dy)
            self.evaluate_many((centre[0] + ox, centre[1] + oy) for ox, oy in pattern)
            if (self.best_dx, self.best_dy) == centre:
                return
