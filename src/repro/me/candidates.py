"""Shared candidate bookkeeping for the non-exhaustive searches.

Predictive, three-step, four-step, diamond and cross-diamond searches
all do the same inner operation: evaluate the SAD at an integer
displacement, skipping displacements outside the window and ones
already visited, while counting evaluations.  :class:`CandidateEvaluator`
centralizes that so every algorithm's position accounting is consistent
with the paper's (each *distinct* candidate position counts once).
"""

from __future__ import annotations

import numpy as np

from repro.me.metrics import sad
from repro.me.search_window import SearchWindow
from repro.me.types import MotionVector


class CandidateEvaluator:
    """Evaluates integer-pel candidates for one block, with memoization.

    Tracks the running best (SAD, shortest-vector tie-break identical to
    the full search's) and the number of evaluated positions.
    """

    def __init__(
        self,
        block: np.ndarray,
        reference: np.ndarray,
        block_y: int,
        block_x: int,
        window: SearchWindow,
    ) -> None:
        self.block = block
        self.reference = reference
        self.block_y = block_y
        self.block_x = block_x
        self.window = window
        self._cache: dict[tuple[int, int], int] = {}
        self.best_dx: int | None = None
        self.best_dy: int | None = None
        self.best_sad: int | None = None

    @property
    def positions(self) -> int:
        """Distinct candidate positions evaluated so far."""
        return len(self._cache)

    @staticmethod
    def _tiebreak_key(dx: int, dy: int) -> tuple[int, int, int, int, int]:
        return (max(abs(dx), abs(dy)), abs(dy), abs(dx), dy, dx)

    def evaluate(self, dx: int, dy: int) -> int | None:
        """SAD at displacement ``(dx, dy)``; ``None`` if outside the
        window.  Re-evaluating a visited position is free (cached) and
        does not increment the position count."""
        if not self.window.contains(dx, dy):
            return None
        key = (dx, dy)
        cached = self._cache.get(key)
        if cached is not None:
            value = cached
        else:
            s = self.block.shape[0]
            y = self.block_y + dy
            x = self.block_x + dx
            ref_block = self.reference[y : y + s, x : x + self.block.shape[1]]
            value = sad(self.block, ref_block)
            self._cache[key] = value
        better = (
            self.best_sad is None
            or value < self.best_sad
            or (
                value == self.best_sad
                and self._tiebreak_key(dx, dy) < self._tiebreak_key(self.best_dx, self.best_dy)
            )
        )
        if better:
            self.best_dx, self.best_dy, self.best_sad = dx, dy, value
        return value

    def evaluate_many(self, displacements) -> None:
        """Evaluate an iterable of ``(dx, dy)`` displacements."""
        for dx, dy in displacements:
            self.evaluate(dx, dy)

    def best(self) -> tuple[MotionVector, int]:
        """Best integer-pel vector found and its SAD."""
        if self.best_sad is None:
            raise RuntimeError("no candidate evaluated yet")
        return MotionVector(2 * self.best_dx, 2 * self.best_dy), self.best_sad

    def descend(self, pattern, max_steps: int) -> None:
        """Greedy descent: repeatedly re-centre ``pattern`` (a list of
        ``(dx, dy)`` offsets) on the current best until no improvement
        or ``max_steps`` recentrings."""
        for _ in range(max_steps):
            centre = (self.best_dx, self.best_dy)
            self.evaluate_many((centre[0] + ox, centre[1] + oy) for ox, oy in pattern)
            if (self.best_dx, self.best_dy) == centre:
                return
