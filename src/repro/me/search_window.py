"""Search-window geometry and candidate clamping.

The paper's search area is ``(N + 2p) x (M + 2p)`` centred on the
reference block's position (Fig. 1).  Near frame borders the area is
clipped to the reference plane — H.263 baseline has no unrestricted MV
mode, so every candidate block must lie fully inside the frame.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SearchWindow:
    """Valid integer displacement ranges for one block.

    ``dx`` spans ``[dx_min, dx_max]`` inclusive, likewise ``dy``; both
    always contain 0 (the collocated candidate is always legal).
    """

    dx_min: int
    dx_max: int
    dy_min: int
    dy_max: int

    def __post_init__(self) -> None:
        if self.dx_min > 0 or self.dx_max < 0 or self.dy_min > 0 or self.dy_max < 0:
            raise ValueError(f"search window must contain the zero vector: {self}")

    @property
    def num_positions(self) -> int:
        return (self.dx_max - self.dx_min + 1) * (self.dy_max - self.dy_min + 1)

    def contains(self, dx: int, dy: int) -> bool:
        return self.dx_min <= dx <= self.dx_max and self.dy_min <= dy <= self.dy_max

    def clamp(self, dx: int, dy: int) -> tuple[int, int]:
        """Project an arbitrary displacement onto the window."""
        return (
            min(max(dx, self.dx_min), self.dx_max),
            min(max(dy, self.dy_min), self.dy_max),
        )


def clamped_window(
    block_y: int,
    block_x: int,
    block_h: int,
    block_w: int,
    plane_h: int,
    plane_w: int,
    p: int,
) -> SearchWindow:
    """Displacement bounds for the block at pixel ``(block_y, block_x)``
    with maximum displacement ``p``, clipped so every candidate block
    stays inside the ``plane_h x plane_w`` reference plane.

    Raises if the block itself doesn't fit in the plane.
    """
    if p < 0:
        raise ValueError(f"max displacement p must be >= 0, got {p}")
    if not (0 <= block_y <= plane_h - block_h and 0 <= block_x <= plane_w - block_w):
        raise ValueError(
            f"block at ({block_y}, {block_x}) size {block_h}x{block_w} "
            f"outside plane {plane_h}x{plane_w}"
        )
    return SearchWindow(
        dx_min=max(-p, -block_x),
        dx_max=min(p, plane_w - block_w - block_x),
        dy_min=max(-p, -block_y),
        dy_max=min(p, plane_h - block_h - block_y),
    )


def half_pel_window(window: SearchWindow) -> SearchWindow:
    """The same bounds expressed in half-pel units.

    Half-pel samples at the very frame edge interpolate between the two
    outermost integer columns/rows, so the half-pel range is exactly
    twice the integer range (no extra shrinkage needed).
    """
    return SearchWindow(
        dx_min=2 * window.dx_min,
        dx_max=2 * window.dx_max,
        dy_min=2 * window.dy_min,
        dy_max=2 * window.dy_max,
    )
