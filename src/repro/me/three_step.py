"""Three-step search (TSS) — Liu/Zeng/Liou [3] in the paper's taxonomy.

A coarse-to-fine pattern search: start with step ``ceil(p/2)`` (4 for
the classic ±7 window, 8 for the paper's ±15), evaluate the centre and
its 8 neighbours at that step, re-centre on the winner, halve the step
and repeat until step 1.  Included as the canonical member of the
"reduce the number of search points" family ACBM competes with.
"""

from __future__ import annotations

from repro.me.candidates import CandidateEvaluator
from repro.me.estimator import BlockContext, MotionEstimator, register_estimator
from repro.me.search_window import clamped_window
from repro.me.subpel import refine_half_pel
from repro.me.types import BlockResult


def initial_step(p: int) -> int:
    """First TSS step size: the power of two just above half the window,
    ``2^(ceil(log2(p+1)) - 1)`` — the classic 4 for p=7, 8 for p=15."""
    if p < 1:
        raise ValueError(f"p must be >= 1, got {p}")
    step = 1
    while step * 2 <= (p + 1) // 2:
        step *= 2
    return step


@register_estimator("tss")
class ThreeStepEstimator(MotionEstimator):
    """Classic three-step search with half-pel refinement."""

    def first_ring(self):
        """Centre plus the 8 step-sized points of the first stage —
        identical for every block, so the frame driver batches it."""
        step = initial_step(self.p)
        return ((0, 0),) + tuple(
            (ox, oy) for ox in (-step, 0, step) for oy in (-step, 0, step) if (ox, oy) != (0, 0)
        )

    def search_block(self, ctx: BlockContext) -> BlockResult:
        window = clamped_window(
            ctx.block_y,
            ctx.block_x,
            self.block_size,
            self.block_size,
            ctx.reference.shape[0],
            ctx.reference.shape[1],
            self.p,
        )
        evaluator = CandidateEvaluator(
            ctx.block, ctx.matcher_reference, ctx.block_y, ctx.block_x, window,
            precomputed=ctx.warm_sads,
        )
        evaluator.evaluate(0, 0)
        step = initial_step(self.p)
        while step >= 1:
            cx, cy = evaluator.best_dx, evaluator.best_dy
            for ox in (-step, 0, step):
                for oy in (-step, 0, step):
                    if ox == 0 and oy == 0:
                        continue
                    evaluator.evaluate(cx + ox, cy + oy)
            step //= 2
        mv, best_sad = evaluator.best()
        positions = evaluator.positions
        if self.half_pel:
            mv, best_sad, extra = refine_half_pel(
                ctx.block, ctx.matcher_reference, ctx.block_y, ctx.block_x, mv, best_sad, window
            )
            positions += extra
        return BlockResult(mv=mv, sad=best_sad, positions=positions)
