"""Block-matching error metrics from Section 2-3 of the paper.

* ``sad``             — Sum of Absolute Differences (the D term).
* ``intra_sad``       — Σ|p(i,j) − µ| over a block: the texture/activity
                        measure ACBM's classifier keys on.
* ``sad_deviation``   — Σ(SAD(u,v) − SAD_min) over all evaluated
                        candidates: the spread measure of the Fig. 4 rig.
* ``sad_map``         — vectorized SAD of one block against every
                        position of a search window (full-search core).

All functions take ``uint8`` (or wider integer) planes and return exact
integer results (Python ints / int64 arrays); ``intra_sad`` is float
because the block mean generally isn't integral.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view


def _as_int(block: np.ndarray) -> np.ndarray:
    arr = np.asarray(block)
    if arr.ndim != 2:
        raise ValueError(f"block must be 2-D, got shape {arr.shape}")
    return arr.astype(np.int64)


def sad(block_a: np.ndarray, block_b: np.ndarray) -> int:
    """Sum of absolute differences between two equal-shaped blocks."""
    a = _as_int(block_a)
    b = _as_int(block_b)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch {a.shape} vs {b.shape}")
    return int(np.abs(a - b).sum())


def mse(block_a: np.ndarray, block_b: np.ndarray) -> float:
    """Mean squared error (used by PSNR, not by the matching loop)."""
    a = _as_int(block_a)
    b = _as_int(block_b)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch {a.shape} vs {b.shape}")
    diff = a - b
    return float((diff * diff).mean())


def intra_sad(block: np.ndarray) -> float:
    """Paper Section 3.1: ``Intra_SAD = Σ_{i,j} |p_t(i,j) − µ|`` with µ
    the block's mean luma.  High values flag textured blocks."""
    b = _as_int(block).astype(np.float64)
    return float(np.abs(b - b.mean()).sum())


def sad_deviation(sads: np.ndarray) -> int:
    """Paper Section 3.1: ``SAD_deviation = Σ_{u,v} (SAD(u,v) − SAD_min)``
    over every candidate evaluated by the full search.  Sharp, unique
    minima (reliable vectors) give large values."""
    arr = np.asarray(sads, dtype=np.int64)
    if arr.size == 0:
        raise ValueError("sad_deviation needs at least one candidate SAD")
    if (arr < 0).any():
        raise ValueError("SAD values must be >= 0")
    return int((arr - arr.min()).sum())


def sad_map(block: np.ndarray, window: np.ndarray) -> np.ndarray:
    """SAD of ``block`` against every aligned position inside ``window``.

    Returns an int64 array of shape
    ``(window_h - block_h + 1, window_w - block_w + 1)`` where entry
    ``(i, j)`` is the SAD against ``window[i:i+bh, j:j+bw]``.
    """
    b = _as_int(block)
    w = _as_int(window)
    bh, bw = b.shape
    if w.shape[0] < bh or w.shape[1] < bw:
        raise ValueError(f"window {w.shape} smaller than block {b.shape}")
    # int16 differences are exact for uint8 inputs and halve memory
    # traffic relative to int64 before the reduction.
    views = sliding_window_view(w.astype(np.int16), (bh, bw))
    diff = np.abs(views - b.astype(np.int16))
    return diff.sum(axis=(2, 3), dtype=np.int64)


def satd(block_a: np.ndarray, block_b: np.ndarray) -> int:
    """Sum of absolute Hadamard-transformed differences.

    Not used by the paper's algorithms but provided because modern
    encoders (x264 et al.) rank sub-pel candidates with it; the ablation
    bench compares SAD- vs SATD-driven refinement.  Requires block edges
    that are powers of two.
    """
    a = _as_int(block_a)
    b = _as_int(block_b)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch {a.shape} vs {b.shape}")
    n, m = a.shape
    if n & (n - 1) or m & (m - 1):
        raise ValueError(f"SATD needs power-of-two block edges, got {a.shape}")
    diff = (a - b).astype(np.int64)

    def hadamard_rows(mat: np.ndarray) -> np.ndarray:
        size = mat.shape[1]
        step = 1
        out = mat.copy()
        while step < size:
            # Butterfly over interleaved column pairs.
            for offset in range(step):
                i = np.arange(offset, size, 2 * step)
                j = i + step
                s = out[:, i] + out[:, j]
                d = out[:, i] - out[:, j]
                out[:, i] = s
                out[:, j] = d
            step *= 2
        return out

    diff = hadamard_rows(diff)
    diff = hadamard_rows(diff.T).T
    return int(np.abs(diff).sum())


def block_activity_map(plane: np.ndarray, block_size: int = 16) -> np.ndarray:
    """Intra_SAD for every aligned block of a plane at once.

    Shape ``(H // block_size, W // block_size)``; used by the Fig. 4
    harness and the analysis tools.
    """
    p = _as_int(plane).astype(np.float64)
    h, w = p.shape
    if h % block_size or w % block_size:
        raise ValueError(f"plane {p.shape} not a multiple of block size {block_size}")
    rows, cols = h // block_size, w // block_size
    blocks = p.reshape(rows, block_size, cols, block_size).transpose(0, 2, 1, 3)
    means = blocks.mean(axis=(2, 3), keepdims=True)
    return np.abs(blocks - means).sum(axis=(2, 3))
