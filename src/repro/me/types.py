"""Core motion-estimation value types.

Sign convention (paper Fig. 1): a motion vector ``(dx, dy)`` means the
best-matched block for the current-frame block at pixel ``(y, x)`` sits
at ``(y + dy, x + dx)`` in the *reference* (previous) frame.

Half-pel precision is represented exactly: :class:`MotionVector` stores
displacements as integers in **half-pel units**, so ``MotionVector(3, -2)``
is ``(+1.5, -1.0)`` pixels.  This keeps every comparison and the H.263
MVD coder exact (no float equality anywhere).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np


@dataclass(frozen=True, order=True)
class MotionVector:
    """A displacement in half-pel units.

    Attributes
    ----------
    hx, hy:
        Horizontal / vertical displacement in half-pels (2 = one pixel).
    """

    hx: int
    hy: int

    def __post_init__(self) -> None:
        if not isinstance(self.hx, (int, np.integer)) or not isinstance(
            self.hy, (int, np.integer)
        ):
            raise TypeError(f"half-pel components must be integers, got ({self.hx!r}, {self.hy!r})")
        object.__setattr__(self, "hx", int(self.hx))
        object.__setattr__(self, "hy", int(self.hy))

    # -- constructors ---------------------------------------------------

    @staticmethod
    def zero() -> "MotionVector":
        return MotionVector(0, 0)

    @staticmethod
    def from_pixels(dx: float, dy: float) -> "MotionVector":
        """Build from pixel units; the displacement must land exactly on
        the half-pel grid."""
        hx, hy = 2.0 * dx, 2.0 * dy
        if hx != round(hx) or hy != round(hy):
            raise ValueError(f"({dx}, {dy}) px is not on the half-pel grid")
        return MotionVector(int(round(hx)), int(round(hy)))

    # -- views ------------------------------------------------------------

    @property
    def x_pixels(self) -> float:
        return self.hx / 2.0

    @property
    def y_pixels(self) -> float:
        return self.hy / 2.0

    @property
    def is_integer_pel(self) -> bool:
        return self.hx % 2 == 0 and self.hy % 2 == 0

    @property
    def is_zero(self) -> bool:
        return self.hx == 0 and self.hy == 0

    def integer_part(self) -> "MotionVector":
        """Truncate toward zero onto the integer-pel grid (the anchor a
        half-pel refinement searches around)."""
        return MotionVector(2 * int(self.hx / 2), 2 * int(self.hy / 2))

    # -- algebra ---------------------------------------------------------

    def __add__(self, other: "MotionVector") -> "MotionVector":
        return MotionVector(self.hx + other.hx, self.hy + other.hy)

    def __sub__(self, other: "MotionVector") -> "MotionVector":
        return MotionVector(self.hx - other.hx, self.hy - other.hy)

    def __neg__(self) -> "MotionVector":
        return MotionVector(-self.hx, -self.hy)

    def chebyshev_pixels(self) -> float:
        """L-inf norm in pixels — the error measure of the Fig. 4 rig."""
        return max(abs(self.hx), abs(self.hy)) / 2.0

    def magnitude_pixels(self) -> float:
        return float(np.hypot(self.hx, self.hy)) / 2.0

    def __repr__(self) -> str:
        return f"MV({self.x_pixels:+g}, {self.y_pixels:+g})"


@dataclass(frozen=True)
class BlockResult:
    """Outcome of a motion search for a single macroblock.

    Attributes
    ----------
    mv:
        Selected motion vector.
    sad:
        SAD of the selected candidate (at the selected precision).
    positions:
        Candidate positions *evaluated* to reach the decision — the
        paper's computational-complexity currency (Table 1).
    used_full_search:
        ACBM bookkeeping: whether this block was classified critical.
    """

    mv: MotionVector
    sad: int
    positions: int
    used_full_search: bool = False

    def __post_init__(self) -> None:
        if self.sad < 0:
            raise ValueError(f"SAD must be >= 0, got {self.sad}")
        if self.positions < 1:
            raise ValueError(f"positions must be >= 1, got {self.positions}")


class MotionField:
    """A per-macroblock grid of motion vectors for one frame.

    Provides the spatio-temporal neighbourhood access the predictive
    estimator needs (paper Fig. 2) with border handling: predictors that
    fall outside the grid simply don't exist and are skipped.
    """

    def __init__(self, mb_rows: int, mb_cols: int) -> None:
        if mb_rows < 1 or mb_cols < 1:
            raise ValueError(f"empty motion field {mb_rows}x{mb_cols}")
        self.mb_rows = mb_rows
        self.mb_cols = mb_cols
        self._mvs: list[list[MotionVector | None]] = [
            [None] * mb_cols for _ in range(mb_rows)
        ]

    @staticmethod
    def zeros(mb_rows: int, mb_cols: int) -> "MotionField":
        field = MotionField(mb_rows, mb_cols)
        for r in range(mb_rows):
            for c in range(mb_cols):
                field.set(r, c, MotionVector.zero())
        return field

    @staticmethod
    def from_arrays(hx: np.ndarray, hy: np.ndarray) -> "MotionField":
        """Build a complete field from half-pel component grids — the
        inverse of :meth:`to_arrays`, used by the batched frame
        estimators.  Vectors repeat heavily across a frame, so equal
        components share one :class:`MotionVector` instance."""
        hx = np.asarray(hx)
        hy = np.asarray(hy)
        if hx.shape != hy.shape or hx.ndim != 2:
            raise ValueError(f"component grids must share a 2-D shape: {hx.shape} vs {hy.shape}")
        field = MotionField(hx.shape[0], hx.shape[1])
        pool: dict[tuple[int, int], MotionVector] = {}
        for r in range(hx.shape[0]):
            row = field._mvs[r]
            for c in range(hx.shape[1]):
                key = (int(hx[r, c]), int(hy[r, c]))
                mv = pool.get(key)
                if mv is None:
                    mv = pool.setdefault(key, MotionVector(key[0], key[1]))
                row[c] = mv
        return field

    def get(self, mb_row: int, mb_col: int) -> MotionVector | None:
        """Vector at (row, col); ``None`` if out of range or not yet set."""
        if 0 <= mb_row < self.mb_rows and 0 <= mb_col < self.mb_cols:
            return self._mvs[mb_row][mb_col]
        return None

    def set(self, mb_row: int, mb_col: int, mv: MotionVector) -> None:
        if not (0 <= mb_row < self.mb_rows and 0 <= mb_col < self.mb_cols):
            raise IndexError(f"({mb_row}, {mb_col}) outside {self.mb_rows}x{self.mb_cols} field")
        self._mvs[mb_row][mb_col] = mv

    @property
    def is_complete(self) -> bool:
        return all(mv is not None for row in self._mvs for mv in row)

    def __iter__(self) -> Iterator[tuple[int, int, MotionVector | None]]:
        for r in range(self.mb_rows):
            for c in range(self.mb_cols):
                yield r, c, self._mvs[r][c]

    def vectors(self) -> list[MotionVector]:
        """All assigned vectors in raster order (skips unset cells)."""
        return [mv for _, _, mv in self if mv is not None]

    def to_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """(hx, hy) int arrays of shape (mb_rows, mb_cols); unset cells
        raise, because exporting a partial field is always a bug."""
        if not self.is_complete:
            raise ValueError("motion field has unset entries")
        hx = np.array([[self._mvs[r][c].hx for c in range(self.mb_cols)] for r in range(self.mb_rows)])
        hy = np.array([[self._mvs[r][c].hy for c in range(self.mb_cols)] for r in range(self.mb_rows)])
        return hx, hy

    def __repr__(self) -> str:
        filled = sum(mv is not None for _, _, mv in self)
        return f"MotionField({self.mb_rows}x{self.mb_cols}, {filled} set)"
