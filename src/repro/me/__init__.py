"""Block-matching motion-estimation substrate.

Contains the metrics the paper defines (SAD, Intra_SAD, SAD_deviation),
the two algorithms ACBM is built from (full search and predictive
search), the classic fast-search baselines the paper cites, half-pel
refinement and search-cost accounting.
"""

from repro.me.estimator import MotionEstimator, available_estimators, create_estimator
from repro.me.full_search import FullSearchEstimator
from repro.me.predictive import PredictiveEstimator
from repro.me.types import BlockResult, MotionField, MotionVector
from repro.me.stats import SearchStats

__all__ = [
    "BlockResult",
    "FullSearchEstimator",
    "MotionEstimator",
    "MotionField",
    "MotionVector",
    "PredictiveEstimator",
    "SearchStats",
    "available_estimators",
    "create_estimator",
]
