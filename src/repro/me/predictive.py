"""Predictive block matching (PBM), Section 2.2 of the paper.

Follows the complexity-bounded scheme of Chimienti et al. [9] that the
paper plugs into ACBM:

1. Gather candidate predictors from the spatio-temporal neighbourhood
   of Fig. 2: the already-computed spatial neighbours in the current
   frame (left, top-left, top, top-right — ``mv1t..mv4t``), the
   collocated vector and its *causal-future* neighbours from the
   previous frame's field (``mv0t-1, mv5t-1, mv7t-1, mv8t-1``), plus
   the zero vector.
2. Evaluate the SAD of each distinct predictor (at integer precision)
   and keep the minimum.
3. Refine: a bounded greedy ±1 integer-pel descent around the winner,
   then the standard 8-neighbour half-pel step.

The whole search touches a handful of positions per block — the
paper's "extremely low computational cost" — but inherits the failure
mode ACBM exists to fix: on textured or erratically moving content all
predictors can sit in the same wrong valley.
"""

from __future__ import annotations

from repro.me.candidates import CandidateEvaluator
from repro.me.estimator import BlockContext, MotionEstimator, register_estimator
from repro.me.search_window import clamped_window
from repro.me.subpel import refine_half_pel
from repro.me.types import BlockResult, MotionField, MotionVector

#: ±1 integer-pel ring used by the bounded refinement descent.
_RING = ((-1, -1), (0, -1), (1, -1), (-1, 0), (1, 0), (-1, 1), (0, 1), (1, 1))


def gather_predictors(
    mb_row: int,
    mb_col: int,
    field: MotionField,
    prev_field: MotionField | None,
) -> list[MotionVector]:
    """Distinct candidate predictors for block (mb_row, mb_col).

    Spatial predictors come from the partially built current field (only
    causally available neighbours, per Fig. 2); temporal predictors come
    from the previous field, including the positions that are *not*
    spatially available (right/below), which is exactly what the
    temporal side contributes.  Order is deterministic; duplicates are
    collapsed keeping first occurrence.
    """
    raw: list[MotionVector | None] = [MotionVector.zero()]
    # Spatial: left, top-left, top, top-right (mv4t, mv1t, mv2t, mv3t).
    raw.append(field.get(mb_row, mb_col - 1))
    raw.append(field.get(mb_row - 1, mb_col - 1))
    raw.append(field.get(mb_row - 1, mb_col))
    raw.append(field.get(mb_row - 1, mb_col + 1))
    if prev_field is not None:
        # Temporal: collocated plus the neighbours unavailable spatially
        # (mv0t-1, mv5t-1, mv7t-1, mv8t-1).
        raw.append(prev_field.get(mb_row, mb_col))
        raw.append(prev_field.get(mb_row, mb_col + 1))
        raw.append(prev_field.get(mb_row + 1, mb_col))
        raw.append(prev_field.get(mb_row + 1, mb_col + 1))
    seen: set[MotionVector] = set()
    out: list[MotionVector] = []
    for mv in raw:
        if mv is None or mv in seen:
            continue
        seen.add(mv)
        out.append(mv)
    return out


@register_estimator("pbm")
class PredictiveEstimator(MotionEstimator):
    """Predictor-driven search with bounded local refinement.

    Parameters
    ----------
    refine_steps:
        Maximum recentrings of the ±1 descent (the complexity bound of
        [9]).  0 disables integer refinement entirely.
    """

    def __init__(
        self,
        p: int = 15,
        block_size: int = 16,
        half_pel: bool = True,
        refine_steps: int = 2,
        use_engine: bool = True,
    ) -> None:
        super().__init__(p=p, block_size=block_size, half_pel=half_pel, use_engine=use_engine)
        if refine_steps < 0:
            raise ValueError(f"refine_steps must be >= 0, got {refine_steps}")
        self.refine_steps = refine_steps

    def search_block(self, ctx: BlockContext) -> BlockResult:
        window = clamped_window(
            ctx.block_y,
            ctx.block_x,
            self.block_size,
            self.block_size,
            ctx.reference.shape[0],
            ctx.reference.shape[1],
            self.p,
        )
        evaluator = CandidateEvaluator(
            ctx.block, ctx.matcher_reference, ctx.block_y, ctx.block_x, window
        )
        predictors = gather_predictors(ctx.mb_row, ctx.mb_col, ctx.field, ctx.prev_field)
        for mv in predictors:
            # Predictors carry half-pel precision; the candidate stage of
            # [9] evaluates their integer-pel projection, clamped into
            # this block's legal window.
            dx, dy = window.clamp(round(mv.hx / 2), round(mv.hy / 2))
            evaluator.evaluate(dx, dy)
        if self.refine_steps:
            evaluator.descend(_RING, self.refine_steps)
        mv, best_sad = evaluator.best()
        positions = evaluator.positions
        if self.half_pel:
            mv, best_sad, extra = refine_half_pel(
                ctx.block, ctx.matcher_reference, ctx.block_y, ctx.block_x, mv, best_sad, window
            )
            positions += extra
        return BlockResult(mv=mv, sad=best_sad, positions=positions, used_full_search=False)
