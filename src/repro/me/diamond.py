"""Diamond search (DS).

The workhorse fast search of MPEG-4-era encoders: a large diamond
pattern (9 points) is greedily re-centred until its best point is the
centre, then one small diamond (4 points) finishes.  Serves as a
baseline between TSS and the predictive search in the ablation bench.
"""

from __future__ import annotations

from repro.me.candidates import CandidateEvaluator
from repro.me.estimator import BlockContext, MotionEstimator, register_estimator
from repro.me.search_window import clamped_window
from repro.me.subpel import refine_half_pel
from repro.me.types import BlockResult

#: Large diamond: centre plus 8 points at L1 radius 2.
LARGE_DIAMOND = ((0, -2), (-1, -1), (1, -1), (-2, 0), (2, 0), (-1, 1), (1, 1), (0, 2))

#: Small diamond: 4 points at L1 radius 1.
SMALL_DIAMOND = ((0, -1), (-1, 0), (1, 0), (0, 1))


@register_estimator("ds")
class DiamondEstimator(MotionEstimator):
    """Classic two-pattern diamond search with half-pel refinement.

    ``max_recentres`` bounds the large-diamond walk so worst-case cost
    stays finite even on pathological (periodic) content.
    """

    def __init__(
        self,
        p: int = 15,
        block_size: int = 16,
        half_pel: bool = True,
        max_recentres: int = 32,
        use_engine: bool = True,
    ) -> None:
        super().__init__(p=p, block_size=block_size, half_pel=half_pel, use_engine=use_engine)
        if max_recentres < 1:
            raise ValueError(f"max_recentres must be >= 1, got {max_recentres}")
        self.max_recentres = max_recentres

    def first_ring(self):
        """Centre plus the first large diamond, batched across blocks
        by the frame driver."""
        return ((0, 0),) + LARGE_DIAMOND

    def search_block(self, ctx: BlockContext) -> BlockResult:
        window = clamped_window(
            ctx.block_y,
            ctx.block_x,
            self.block_size,
            self.block_size,
            ctx.reference.shape[0],
            ctx.reference.shape[1],
            self.p,
        )
        evaluator = CandidateEvaluator(
            ctx.block, ctx.matcher_reference, ctx.block_y, ctx.block_x, window,
            precomputed=ctx.warm_sads,
        )
        evaluator.evaluate(0, 0)
        evaluator.descend(LARGE_DIAMOND, self.max_recentres)
        cx, cy = evaluator.best_dx, evaluator.best_dy
        evaluator.evaluate_many((cx + ox, cy + oy) for ox, oy in SMALL_DIAMOND)
        mv, best_sad = evaluator.best()
        positions = evaluator.positions
        if self.half_pel:
            mv, best_sad, extra = refine_half_pel(
                ctx.block, ctx.matcher_reference, ctx.block_y, ctx.block_x, mv, best_sad, window
            )
            positions += extra
        return BlockResult(mv=mv, sad=best_sad, positions=positions)
