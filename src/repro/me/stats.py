"""Search-cost accounting.

The paper reports computational complexity as the *average number of
candidate positions searched per macroblock* (Table 1) — 969 for FSBM
with p = 15 (961 integer + 8 half-pel).  :class:`SearchStats`
accumulates exactly that across blocks and frames, plus the ACBM
decision mix (how often each classifier branch fired).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SearchStats:
    """Accumulates per-block search outcomes across a run."""

    blocks: int = 0
    positions: int = 0
    full_search_blocks: int = 0
    #: ACBM decision counts keyed by branch name (see core.classifier).
    decisions: dict[str, int] = field(default_factory=dict)

    def record_block(
        self,
        positions: int,
        used_full_search: bool = False,
        decision: str | None = None,
    ) -> None:
        if positions < 1:
            raise ValueError(f"positions must be >= 1, got {positions}")
        self.blocks += 1
        self.positions += positions
        if used_full_search:
            self.full_search_blocks += 1
        if decision is not None:
            self.decisions[decision] = self.decisions.get(decision, 0) + 1

    def record_frame(
        self,
        positions,
        used_full_search: bool = False,
        decision: str | None = None,
    ) -> None:
        """Record a whole frame's per-block position counts at once —
        the batched estimators' bulk form of :meth:`record_block`
        (delegates per block so the accounting lives in one place)."""
        for row in positions:
            for count in row:
                self.record_block(int(count), used_full_search=used_full_search, decision=decision)

    def merge(self, other: "SearchStats") -> None:
        """Fold another accumulator into this one (frame → sequence)."""
        self.blocks += other.blocks
        self.positions += other.positions
        self.full_search_blocks += other.full_search_blocks
        for key, count in other.decisions.items():
            self.decisions[key] = self.decisions.get(key, 0) + count

    @property
    def avg_positions_per_block(self) -> float:
        """Table 1's quantity.  0.0 before any block is recorded."""
        if self.blocks == 0:
            return 0.0
        return self.positions / self.blocks

    @property
    def full_search_fraction(self) -> float:
        """Fraction of blocks classified critical (ACBM only)."""
        if self.blocks == 0:
            return 0.0
        return self.full_search_blocks / self.blocks

    def reduction_vs(self, reference_positions_per_block: float) -> float:
        """Relative saving against a reference cost, e.g. 969 for FSBM
        p=15: the paper's "up to 95%" headline number."""
        if reference_positions_per_block <= 0:
            raise ValueError("reference cost must be positive")
        return 1.0 - self.avg_positions_per_block / reference_positions_per_block

    def __repr__(self) -> str:
        return (
            f"SearchStats(blocks={self.blocks}, "
            f"avg_positions={self.avg_positions_per_block:.1f}, "
            f"full_search={self.full_search_fraction:.1%})"
        )
