"""Motion-estimator interface, frame driver and registry.

Every algorithm (full search, predictive, ACBM, the fast-search
baselines) implements one method — :meth:`MotionEstimator.search_block`
— and inherits :meth:`MotionEstimator.estimate`.  The frame driver,
:meth:`MotionEstimator.estimate_frame`, is *overridable*: the default
walks the macroblock grid in raster order (the order H.263 encodes, and
the order that makes the left/top spatial predictors of Fig. 2
available), assembling a :class:`MotionField` and a
:class:`SearchStats`; estimators with a whole-frame vectorized path
(FSBM) override it and batch every block through
:mod:`repro.me.engine` instead, with bit-identical results.  The
default walk itself batches what causality allows: searches that
declare a fixed opening pattern (:meth:`MotionEstimator.first_ring`)
get that ring scored for every block in one
:func:`repro.me.engine.frame_ring_sad` gather before the walk starts,
and each block's evaluator is seeded with the precomputed SADs.

``estimate`` also builds one :class:`repro.me.engine.ReferencePlane`
per call (or accepts a shared one from the encoder) so every search's
half-pel candidates read a single cached interpolation of the
reference rather than re-deriving it per candidate.

Estimators are stateless between frames; temporal context (the previous
frame's motion field) is passed in explicitly so the same instance can
serve several concurrent encodes.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np

from repro.me.engine.kernels import frame_ring_sad
from repro.me.engine.reference_plane import ReferencePlane
from repro.me.stats import SearchStats
from repro.me.types import BlockResult, MotionField


@dataclass
class BlockContext:
    """Everything a search needs to decide one macroblock's vector."""

    current: np.ndarray
    reference: np.ndarray
    mb_row: int
    mb_col: int
    block_size: int
    field: MotionField
    prev_field: MotionField | None
    qp: int
    #: Shared per-frame cache (half-pel plane etc.); ``None`` when the
    #: reference is not cacheable or the engine is disabled.
    ref_plane: ReferencePlane | None = None
    #: Pre-scored first-ring SADs for *this* block, keyed by ``(dx, dy)``
    #: — filled by the frame driver from one :func:`frame_ring_sad`
    #: gather when the estimator declares a fixed first ring.  A
    #: :class:`repro.me.candidates.CandidateEvaluator` consults it on
    #: cache misses, so values are used (and counted) only for the
    #: positions the search actually visits.
    warm_sads: "Mapping[tuple[int, int], int] | None" = None
    #: Per-frame scratch shared by every block of one
    #: :meth:`MotionEstimator.estimate_frame` call — estimators are
    #: stateless between frames, so lazily built frame-wide artifacts
    #: (e.g. ACBM's full-search SAD surfaces) live here instead of on
    #: the instance.
    frame_cache: dict | None = None

    @property
    def block_y(self) -> int:
        return self.mb_row * self.block_size

    @property
    def block_x(self) -> int:
        return self.mb_col * self.block_size

    @property
    def block(self) -> np.ndarray:
        s = self.block_size
        return self.current[self.block_y : self.block_y + s, self.block_x : self.block_x + s]

    @property
    def matcher_reference(self) -> "np.ndarray | ReferencePlane":
        """What searches hand to the SAD/half-pel helpers: the cached
        plane when available, the raw array otherwise."""
        return self.ref_plane if self.ref_plane is not None else self.reference


class MotionEstimator(ABC):
    """Base class for all block-matching estimators.

    Parameters
    ----------
    p:
        Maximum integer displacement (the paper evaluates p = 15).
    block_size:
        Luma block edge (16 throughout the paper).
    half_pel:
        Whether the final vector is refined to half-pel precision, as
        in the paper's H.263 setting.
    use_engine:
        When True (default) the frame driver builds a shared
        :class:`ReferencePlane` per call and batch paths may engage;
        False forces the seed's per-block, per-candidate evaluation —
        the golden tests and benchmarks compare the two.
    """

    #: Registry key; subclasses override.
    name: str = ""

    def __init__(
        self,
        p: int = 15,
        block_size: int = 16,
        half_pel: bool = True,
        use_engine: bool = True,
    ) -> None:
        if p < 1:
            raise ValueError(f"p must be >= 1, got {p}")
        if block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        self.p = p
        self.block_size = block_size
        self.half_pel = half_pel
        self.use_engine = use_engine

    @abstractmethod
    def search_block(self, ctx: BlockContext) -> BlockResult:
        """Find the motion vector for the macroblock described by ``ctx``."""

    def first_ring(self) -> "tuple[tuple[int, int], ...] | None":
        """The fixed first-stage candidate displacements, or ``None``.

        Pattern searches whose opening stage evaluates the same
        ``(dx, dy)`` set for every block (TSS's step ring, DS's large
        diamond, ...) return it here; the frame driver then scores the
        ring for *all* blocks in one :func:`frame_ring_sad` gather and
        seeds each block's evaluator with the results.  Searches whose
        first candidates depend on per-block state (predictive, ACBM)
        return ``None`` — batching their openings would break Fig. 2's
        causal predictor chain.
        """
        return None

    def _first_ring_warm(
        self, current: np.ndarray, plane: ReferencePlane | None, rows: int, cols: int
    ) -> "list[list[dict[tuple[int, int], int]]] | None":
        """Per-block warm SAD dictionaries from one batched ring gather,
        or ``None`` when ring batching does not apply.  Candidates whose
        block leaves the plane are dropped (the evaluator's window test
        rejects them before the warm cache is consulted anyway)."""
        if plane is None or not self.use_engine:
            return None
        ring = self.first_ring()
        if not ring:
            return None
        sads = frame_ring_sad(current, plane, ring, self.block_size).tolist()
        return [
            [
                {off: value for off, value in zip(ring, sads[r][c]) if value >= 0}
                for c in range(cols)
            ]
            for r in range(rows)
        ]

    def estimate(
        self,
        current: np.ndarray,
        reference: np.ndarray,
        prev_field: MotionField | None = None,
        qp: int = 16,
        ref_plane: ReferencePlane | None = None,
    ) -> tuple[MotionField, SearchStats]:
        """Estimate the motion field of ``current`` against ``reference``.

        Planes must share shape and be exact multiples of the block
        size.  ``ref_plane`` lets the encoder share one per-frame cache
        across estimation and motion compensation; when omitted one is
        built here.  Returns the completed field and the search-cost
        stats.
        """
        cur = np.asarray(current)
        ref = np.asarray(reference)
        if cur.shape != ref.shape:
            raise ValueError(f"plane shapes differ: {cur.shape} vs {ref.shape}")
        h, w = cur.shape
        s = self.block_size
        if h % s or w % s:
            raise ValueError(f"plane {cur.shape} not a multiple of block size {s}")
        rows, cols = h // s, w // s
        if prev_field is not None and (prev_field.mb_rows, prev_field.mb_cols) != (rows, cols):
            raise ValueError(
                f"previous field {prev_field.mb_rows}x{prev_field.mb_cols} "
                f"does not match {rows}x{cols} grid"
            )
        plane: ReferencePlane | None = None
        if self.use_engine:
            if ref_plane is not None:
                # A stale cache (e.g. hoisted out of a frame loop) would
                # silently search the wrong frame; the equality check is
                # trivially cheap next to one frame's search.
                if ref_plane.luma is not ref and (
                    ref_plane.shape != ref.shape or not np.array_equal(ref_plane.luma, ref)
                ):
                    raise ValueError(
                        f"ref_plane {ref_plane.shape} does not wrap this reference "
                        f"{ref.shape}: build one ReferencePlane per reference frame"
                    )
                plane = ref_plane
            else:
                plane = ReferencePlane.wrap(ref)
        return self.estimate_frame(cur, ref, plane, prev_field, qp)

    def estimate_frame(
        self,
        current: np.ndarray,
        reference: np.ndarray,
        plane: ReferencePlane | None,
        prev_field: MotionField | None,
        qp: int,
    ) -> tuple[MotionField, SearchStats]:
        """Frame driver: produce the complete field and stats.

        The base implementation is the per-block raster walk every
        search supports; estimators with a whole-frame vectorized path
        override this (and must stay bit-identical — searches whose
        block decisions feed later blocks, like predictive/ACBM, keep
        the raster walk so Fig. 2's causal predictors are available).
        Inputs are pre-validated by :meth:`estimate`.
        """
        s = self.block_size
        rows, cols = current.shape[0] // s, current.shape[1] // s
        warm = self._first_ring_warm(current, plane, rows, cols)
        frame_cache: dict = {}
        field = MotionField(rows, cols)
        stats = SearchStats()
        for r in range(rows):
            for c in range(cols):
                ctx = BlockContext(
                    current=current,
                    reference=reference,
                    mb_row=r,
                    mb_col=c,
                    block_size=s,
                    field=field,
                    prev_field=prev_field,
                    qp=qp,
                    ref_plane=plane,
                    warm_sads=warm[r][c] if warm is not None else None,
                    frame_cache=frame_cache,
                )
                result = self.search_block(ctx)
                field.set(r, c, result.mv)
                stats.record_block(
                    result.positions,
                    used_full_search=result.used_full_search,
                    decision=getattr(result, "decision", None),
                )
        return field, stats


# -- registry -----------------------------------------------------------

_REGISTRY: dict[str, Callable[..., MotionEstimator]] = {}


def register_estimator(name: str) -> Callable[[type], type]:
    """Class decorator registering an estimator under ``name``."""

    def wrap(cls: type) -> type:
        if name in _REGISTRY:
            raise ValueError(f"estimator {name!r} already registered")
        cls.name = name
        _REGISTRY[name] = cls
        return cls

    return wrap


def _load_builtin_estimators() -> None:
    """Import the implementation modules so they self-register.

    Done lazily (not at package import) to avoid import cycles between
    ``repro.me`` and ``repro.core``.
    """
    from repro import core  # noqa: F401
    from repro.me import (  # noqa: F401
        cross_diamond,
        diamond,
        four_step,
        full_search,
        hexagon,
        new_three_step,
        predictive,
        three_step,
    )


def available_estimators() -> tuple[str, ...]:
    """Registered estimator names, sorted."""
    _load_builtin_estimators()
    return tuple(sorted(_REGISTRY))


def create_estimator(name: str, **kwargs) -> MotionEstimator:
    """Instantiate a registered estimator by name.

    >>> est = create_estimator("fsbm", p=15)
    >>> est.name
    'fsbm'
    """
    _load_builtin_estimators()
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ValueError(f"unknown estimator {name!r}; available: {available_estimators()}") from None
    return factory(**kwargs)
