"""Hexagon-based search (HEXBS) — Zhu, Lin & Chau.

The pattern search that superseded diamond search in practical
encoders (x264's "hex"): a 6-point large hexagon walks greedily (each
re-centre adds only 3 new points thanks to pattern overlap — the
evaluator's cache makes that automatic), then a 4-point small diamond
finishes.  Included as the strongest classic baseline in the ablation
bench.
"""

from __future__ import annotations

from repro.me.candidates import CandidateEvaluator
from repro.me.diamond import SMALL_DIAMOND
from repro.me.estimator import BlockContext, MotionEstimator, register_estimator
from repro.me.search_window import clamped_window
from repro.me.subpel import refine_half_pel
from repro.me.types import BlockResult

#: Large hexagon: 6 points, radius 2 horizontally, (1, 2) diagonally.
LARGE_HEXAGON = ((-2, 0), (2, 0), (-1, -2), (1, -2), (-1, 2), (1, 2))


@register_estimator("hexbs")
class HexagonEstimator(MotionEstimator):
    """Hexagon-based search with half-pel refinement."""

    def __init__(
        self,
        p: int = 15,
        block_size: int = 16,
        half_pel: bool = True,
        max_recentres: int = 32,
        use_engine: bool = True,
    ) -> None:
        super().__init__(p=p, block_size=block_size, half_pel=half_pel, use_engine=use_engine)
        if max_recentres < 1:
            raise ValueError(f"max_recentres must be >= 1, got {max_recentres}")
        self.max_recentres = max_recentres

    def first_ring(self):
        """Centre plus the first large hexagon, batched across blocks
        by the frame driver."""
        return ((0, 0),) + LARGE_HEXAGON

    def search_block(self, ctx: BlockContext) -> BlockResult:
        window = clamped_window(
            ctx.block_y,
            ctx.block_x,
            self.block_size,
            self.block_size,
            ctx.reference.shape[0],
            ctx.reference.shape[1],
            self.p,
        )
        evaluator = CandidateEvaluator(
            ctx.block, ctx.matcher_reference, ctx.block_y, ctx.block_x, window,
            precomputed=ctx.warm_sads,
        )
        evaluator.evaluate(0, 0)
        evaluator.descend(LARGE_HEXAGON, self.max_recentres)
        cx, cy = evaluator.best_dx, evaluator.best_dy
        evaluator.evaluate_many((cx + ox, cy + oy) for ox, oy in SMALL_DIAMOND)
        mv, best_sad = evaluator.best()
        positions = evaluator.positions
        if self.half_pel:
            mv, best_sad, extra = refine_half_pel(
                ctx.block, ctx.matcher_reference, ctx.block_y, ctx.block_x, mv, best_sad, window
            )
            positions += extra
        return BlockResult(mv=mv, sad=best_sad, positions=positions)
